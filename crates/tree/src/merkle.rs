//! A functional Bonsai Merkle tree: authenticated storage for counter
//! blocks with tamper and replay detection.
//!
//! The leaf level holds 64-byte *counter blocks* (packed delta groups or
//! monolithic counters). Every counter block's 64-bit MAC is stored in an
//! off-chip parent node; parent nodes are themselves MAC'd into grandparent
//! nodes, and the MACs of the top level live in on-chip SRAM, which the
//! attacker cannot touch. Resetting any off-chip state to an older value
//! (a replay) breaks the MAC chain somewhere below the on-chip root and is
//! detected.

use ame_crypto::MemoryCipher;
use ame_persist::{invalid_data, put_u64, read_section, write_section, ByteReader};
use std::collections::HashMap;
use std::io;

/// Size of a counter block / tree node in bytes.
pub const NODE_BYTES: usize = 64;

/// Verification failure: the MAC chain broke at `level` (0 = the counter
/// block itself) on node `node`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerifyError {
    /// Level at which the mismatch was found (0 = leaf/counter level).
    pub level: usize,
    /// Node index within that level.
    pub node: u64,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "integrity violation at tree level {} node {}",
            self.level, self.node
        )
    }
}

impl std::error::Error for VerifyError {}

/// A functional Bonsai Merkle tree over counter blocks.
///
/// # Example
///
/// ```
/// use ame_crypto::MemoryCipher;
/// use ame_tree::BonsaiTree;
///
/// let mut tree = BonsaiTree::new(MemoryCipher::from_seed(1), 2, 8);
/// tree.write_counter_block(5, [0xab; 64]);
/// assert_eq!(tree.read_counter_block(5).unwrap(), [0xab; 64]);
///
/// // Off-chip tampering is detected:
/// tree.tamper_counter_block(5, |b| b[0] ^= 1);
/// assert!(tree.read_counter_block(5).is_err());
/// ```
#[derive(Debug)]
pub struct BonsaiTree {
    cipher: MemoryCipher,
    arity: usize,
    /// Number of *off-chip* MAC levels. Level index 0 stores leaf MACs;
    /// level `off_chip_levels` is the on-chip root map.
    off_chip_levels: usize,
    counter_blocks: HashMap<u64, [u8; NODE_BYTES]>,
    /// `stored_macs[l][i]` = MAC of node `i` of level `l` (level 0 = leaf
    /// counter blocks), held in off-chip node storage.
    stored_macs: Vec<HashMap<u64, u64>>,
    /// On-chip (tamper-proof) MACs of the top off-chip level.
    root_macs: HashMap<u64, u64>,
}

impl BonsaiTree {
    /// Creates a tree with `off_chip_levels` MAC levels below the on-chip
    /// root and the given node `arity`.
    ///
    /// # Panics
    ///
    /// Panics if `arity` is not in `2..=8` (a 64-byte node holds at most
    /// eight 64-bit MACs).
    #[must_use]
    pub fn new(cipher: MemoryCipher, off_chip_levels: usize, arity: usize) -> Self {
        assert!(
            (2..=8).contains(&arity),
            "a 64-byte node holds 2..=8 64-bit MACs"
        );
        Self {
            cipher,
            arity,
            off_chip_levels,
            counter_blocks: HashMap::new(),
            stored_macs: vec![HashMap::new(); off_chip_levels],
            root_macs: HashMap::new(),
        }
    }

    /// Number of off-chip MAC levels.
    #[must_use]
    pub fn off_chip_levels(&self) -> usize {
        self.off_chip_levels
    }

    /// Domain-separated MAC of a node's content.
    fn node_mac(&self, level: usize, idx: u64, content: &[u8; NODE_BYTES]) -> u64 {
        // Encode (level, index) in the MAC's address input so identical
        // content at different tree positions yields different MACs.
        let addr = ((level as u64 + 1) << 48) ^ idx;
        self.cipher.mac_node(addr, 0, content)
    }

    /// Packs the child MACs of node `parent` at MAC level `level` (whose
    /// children live at `level`) into a 64-byte node image.
    fn node_content(&self, child_level: usize, parent: u64) -> [u8; NODE_BYTES] {
        let mut content = [0u8; NODE_BYTES];
        for c in 0..self.arity {
            let child = parent * self.arity as u64 + c as u64;
            let mac = self.stored_macs[child_level]
                .get(&child)
                .copied()
                .unwrap_or(0);
            content[c * 8..(c + 1) * 8].copy_from_slice(&mac.to_le_bytes());
        }
        content
    }

    /// Re-MACs the path from leaf `idx` to the root after a change.
    fn update_path(&mut self, idx: u64) {
        let leaf = self
            .counter_blocks
            .get(&idx)
            .copied()
            .unwrap_or([0; NODE_BYTES]);
        let mac = self.node_mac(0, idx, &leaf);
        if self.off_chip_levels == 0 {
            self.root_macs.insert(idx, mac);
            return;
        }
        self.stored_macs[0].insert(idx, mac);
        let mut node = idx;
        for level in 1..=self.off_chip_levels {
            node /= self.arity as u64;
            let content = self.node_content(level - 1, node);
            let mac = self.node_mac(level, node, &content);
            if level == self.off_chip_levels {
                self.root_macs.insert(node, mac);
            } else {
                self.stored_macs[level].insert(node, mac);
            }
        }
    }

    /// Writes a counter block and updates the MAC path to the root.
    pub fn write_counter_block(&mut self, idx: u64, content: [u8; NODE_BYTES]) {
        self.counter_blocks.insert(idx, content);
        self.update_path(idx);
    }

    /// Reads and verifies a counter block. Never-written blocks are
    /// lazily initialized to zeros (trusted boot state).
    ///
    /// # Errors
    ///
    /// Returns [`VerifyError`] naming the level where the MAC chain broke
    /// if any node on the path was tampered with or replayed.
    pub fn read_counter_block(&mut self, idx: u64) -> Result<[u8; NODE_BYTES], VerifyError> {
        if !self.counter_blocks.contains_key(&idx) {
            self.write_counter_block(idx, [0; NODE_BYTES]);
        }
        let leaf = self.counter_blocks[&idx];

        // Level 0: the counter block against its stored MAC.
        let expected0 = if self.off_chip_levels == 0 {
            self.root_macs.get(&idx).copied().unwrap_or(0)
        } else {
            self.stored_macs[0].get(&idx).copied().unwrap_or(0)
        };
        if self.node_mac(0, idx, &leaf) != expected0 {
            return Err(VerifyError {
                level: 0,
                node: idx,
            });
        }

        // Levels 1..: each node of packed child MACs against its parent.
        let mut node = idx;
        for level in 1..=self.off_chip_levels {
            node /= self.arity as u64;
            let content = self.node_content(level - 1, node);
            let expected = if level == self.off_chip_levels {
                self.root_macs.get(&node).copied().unwrap_or(0)
            } else {
                self.stored_macs[level].get(&node).copied().unwrap_or(0)
            };
            if self.node_mac(level, node, &content) != expected {
                return Err(VerifyError { level, node });
            }
        }
        Ok(leaf)
    }

    /// Simulates an attacker mutating off-chip counter storage directly.
    pub fn tamper_counter_block(&mut self, idx: u64, f: impl FnOnce(&mut [u8; NODE_BYTES])) {
        let entry = self.counter_blocks.entry(idx).or_insert([0; NODE_BYTES]);
        f(entry);
        // No MAC update: that is the point of tampering.
    }

    /// Simulates an attacker overwriting a stored off-chip MAC.
    ///
    /// # Panics
    ///
    /// Panics if `level` is not a valid off-chip MAC level.
    pub fn tamper_stored_mac(&mut self, level: usize, idx: u64, mac: u64) {
        assert!(
            level < self.off_chip_levels,
            "level {level} is not off-chip"
        );
        self.stored_macs[level].insert(idx, mac);
    }

    /// Snapshot of all off-chip state for one leaf (counter block + its
    /// stored leaf MAC) — the ingredients of a replay attack.
    #[must_use]
    pub fn snapshot_leaf(&self, idx: u64) -> ([u8; NODE_BYTES], u64) {
        let block = self
            .counter_blocks
            .get(&idx)
            .copied()
            .unwrap_or([0; NODE_BYTES]);
        let mac = if self.off_chip_levels == 0 {
            self.root_macs.get(&idx).copied().unwrap_or(0)
        } else {
            self.stored_macs[0].get(&idx).copied().unwrap_or(0)
        };
        (block, mac)
    }

    /// Replays a previously snapshotted leaf: restores both the counter
    /// block *and* its stored MAC, exactly what a physical attacker with
    /// full DRAM access can do. Detected at level 1 unless the snapshot is
    /// current.
    pub fn replay_leaf(&mut self, idx: u64, snapshot: ([u8; NODE_BYTES], u64)) {
        self.counter_blocks.insert(idx, snapshot.0);
        if self.off_chip_levels == 0 {
            // With no off-chip MAC levels the "stored MAC" is on-chip and
            // the attacker cannot restore it; only the block reverts.
        } else {
            self.stored_macs[0].insert(idx, snapshot.1);
        }
    }

    /// Section magic of the serialized form.
    const MAGIC: &'static [u8; 8] = b"AMETREE\0";
    /// Section version of the serialized form.
    const VERSION: u32 = 1;

    fn put_map(payload: &mut Vec<u8>, map: &HashMap<u64, u64>) {
        let mut keys: Vec<u64> = map.keys().copied().collect();
        keys.sort_unstable();
        put_u64(payload, keys.len() as u64);
        for k in keys {
            put_u64(payload, k);
            put_u64(payload, map[&k]);
        }
    }

    fn read_map(payload: &mut ByteReader<'_>) -> io::Result<HashMap<u64, u64>> {
        let count = payload.u64()? as usize;
        let mut map = HashMap::with_capacity(count.min(1 << 24));
        for _ in 0..count {
            let k = payload.u64()?;
            let v = payload.u64()?;
            map.insert(k, v);
        }
        Ok(map)
    }

    /// Serializes the tree's complete state — counter blocks, every
    /// off-chip MAC level, and the on-chip root MACs — into a checksummed
    /// section (sorted, so the encoding is deterministic). The cipher is
    /// *not* serialized: it is key material the caller re-derives.
    pub fn encode_state(&self, out: &mut Vec<u8>) {
        let mut payload = Vec::new();
        put_u64(&mut payload, self.arity as u64);
        put_u64(&mut payload, self.off_chip_levels as u64);
        let mut leaves: Vec<u64> = self.counter_blocks.keys().copied().collect();
        leaves.sort_unstable();
        put_u64(&mut payload, leaves.len() as u64);
        for idx in leaves {
            put_u64(&mut payload, idx);
            payload.extend_from_slice(&self.counter_blocks[&idx]);
        }
        for level in &self.stored_macs {
            Self::put_map(&mut payload, level);
        }
        Self::put_map(&mut payload, &self.root_macs);
        write_section(out, Self::MAGIC, Self::VERSION, &payload);
    }

    /// Rebuilds a tree from a section produced by
    /// [`BonsaiTree::encode_state`], advancing the reader past it. The
    /// caller supplies the cipher (re-derived key material); a wrong
    /// cipher yields a structurally valid tree that fails verification on
    /// first read, exactly like tampered storage.
    ///
    /// # Errors
    ///
    /// `InvalidData` on a bad magic, unsupported version, checksum
    /// mismatch, truncation, or an out-of-range arity.
    pub fn decode_state(cipher: MemoryCipher, r: &mut ByteReader<'_>) -> io::Result<Self> {
        let (version, mut payload) = read_section(r, Self::MAGIC)?;
        if version != Self::VERSION {
            return Err(invalid_data(format!(
                "unsupported tree state version {version}"
            )));
        }
        let arity = payload.u64()? as usize;
        if !(2..=8).contains(&arity) {
            return Err(invalid_data("tree arity out of range"));
        }
        let off_chip_levels = payload.u64()? as usize;
        if off_chip_levels > 64 {
            return Err(invalid_data("implausible tree depth"));
        }
        let count = payload.u64()? as usize;
        let mut counter_blocks = HashMap::with_capacity(count.min(1 << 24));
        for _ in 0..count {
            let idx = payload.u64()?;
            let block: [u8; NODE_BYTES] = payload.array()?;
            counter_blocks.insert(idx, block);
        }
        let mut stored_macs = Vec::with_capacity(off_chip_levels);
        for _ in 0..off_chip_levels {
            stored_macs.push(Self::read_map(&mut payload)?);
        }
        let root_macs = Self::read_map(&mut payload)?;
        Ok(Self {
            cipher,
            arity,
            off_chip_levels,
            counter_blocks,
            stored_macs,
            root_macs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree(levels: usize) -> BonsaiTree {
        BonsaiTree::new(MemoryCipher::from_seed(99), levels, 8)
    }

    #[test]
    fn write_read_roundtrip() {
        let mut t = tree(3);
        for i in 0..32u64 {
            let mut b = [0u8; 64];
            b[0] = i as u8;
            t.write_counter_block(i, b);
        }
        for i in 0..32u64 {
            assert_eq!(t.read_counter_block(i).unwrap()[0], i as u8);
        }
    }

    #[test]
    fn unwritten_blocks_read_as_zero() {
        let mut t = tree(2);
        assert_eq!(t.read_counter_block(77).unwrap(), [0; 64]);
        // And remain verifiable afterwards.
        assert!(t.read_counter_block(77).is_ok());
    }

    #[test]
    fn leaf_tamper_detected_at_level_0() {
        let mut t = tree(2);
        t.write_counter_block(3, [1; 64]);
        t.tamper_counter_block(3, |b| b[10] ^= 0x40);
        assert_eq!(
            t.read_counter_block(3),
            Err(VerifyError { level: 0, node: 3 })
        );
    }

    #[test]
    fn mac_tamper_detected_at_parent_level() {
        let mut t = tree(2);
        t.write_counter_block(3, [1; 64]);
        // Forge the leaf MAC: level 0 then disagrees with its parent node.
        t.tamper_stored_mac(0, 3, 0xdead_beef);
        let err = t.read_counter_block(3).unwrap_err();
        assert_eq!(err.level, 0, "forged MAC no longer matches the block");
        // Tamper an interior MAC instead.
        let mut t = tree(2);
        t.write_counter_block(3, [1; 64]);
        t.tamper_stored_mac(1, 0, 0x1234);
        let err = t.read_counter_block(3).unwrap_err();
        assert_eq!(err.level, 1);
    }

    #[test]
    fn replay_attack_detected() {
        let mut t = tree(2);
        t.write_counter_block(9, [1; 64]);
        let old = t.snapshot_leaf(9);
        // Victim updates the counter block (e.g. a counter increments).
        t.write_counter_block(9, [2; 64]);
        // Attacker restores block + MAC to the stale snapshot.
        t.replay_leaf(9, old);
        let err = t.read_counter_block(9).unwrap_err();
        // Block and leaf MAC are self-consistent, so the break surfaces at
        // the parent (level 1) whose stored child MAC moved on.
        assert_eq!(err.level, 1);
    }

    #[test]
    fn replay_of_current_state_is_undetectable_noop() {
        let mut t = tree(2);
        t.write_counter_block(9, [1; 64]);
        let snap = t.snapshot_leaf(9);
        t.replay_leaf(9, snap);
        assert_eq!(t.read_counter_block(9).unwrap(), [1; 64]);
    }

    #[test]
    fn sibling_updates_do_not_break_neighbours() {
        let mut t = tree(3);
        t.write_counter_block(0, [1; 64]);
        t.write_counter_block(1, [2; 64]);
        t.write_counter_block(8, [3; 64]); // different level-1 parent
        assert!(t.read_counter_block(0).is_ok());
        assert!(t.read_counter_block(1).is_ok());
        assert!(t.read_counter_block(8).is_ok());
    }

    #[test]
    fn zero_off_chip_levels_means_on_chip_macs() {
        // Tiny regions: leaf MACs are on-chip; leaf tampering is caught,
        // and replay cannot restore the MAC at all.
        let mut t = tree(0);
        t.write_counter_block(4, [7; 64]);
        let old = t.snapshot_leaf(4);
        t.write_counter_block(4, [8; 64]);
        t.replay_leaf(4, old);
        let err = t.read_counter_block(4).unwrap_err();
        assert_eq!(err.level, 0);
    }

    #[test]
    fn position_bound_macs() {
        // The same content at two leaves must produce different MACs.
        let mut t = tree(1);
        t.write_counter_block(0, [5; 64]);
        t.write_counter_block(1, [5; 64]);
        let (_, m0) = t.snapshot_leaf(0);
        let (_, m1) = t.snapshot_leaf(1);
        assert_ne!(m0, m1);
    }

    #[test]
    #[should_panic(expected = "64-byte node holds")]
    fn wide_arity_rejected() {
        let _ = BonsaiTree::new(MemoryCipher::from_seed(1), 1, 16);
    }

    #[test]
    fn state_roundtrip_verifies() {
        let mut t = tree(3);
        for i in 0..32u64 {
            let mut b = [0u8; 64];
            b[0] = i as u8;
            t.write_counter_block(i, b);
        }
        let mut a = Vec::new();
        t.encode_state(&mut a);
        let mut back =
            BonsaiTree::decode_state(MemoryCipher::from_seed(99), &mut ByteReader::new(&a))
                .unwrap();
        for i in 0..32u64 {
            assert_eq!(back.read_counter_block(i).unwrap()[0], i as u8);
        }
        let mut b = Vec::new();
        back.encode_state(&mut b);
        assert_eq!(a, b, "re-encoding is deterministic and bit-identical");
    }

    #[test]
    fn state_decoded_with_wrong_cipher_fails_verification() {
        let mut t = tree(2);
        t.write_counter_block(5, [1; 64]);
        let mut buf = Vec::new();
        t.encode_state(&mut buf);
        let mut back =
            BonsaiTree::decode_state(MemoryCipher::from_seed(100), &mut ByteReader::new(&buf))
                .unwrap();
        assert!(back.read_counter_block(5).is_err(), "wrong key, no service");
    }

    #[test]
    fn state_rejects_flipped_bit() {
        let mut t = tree(2);
        t.write_counter_block(5, [1; 64]);
        let mut buf = Vec::new();
        t.encode_state(&mut buf);
        let mid = buf.len() / 2;
        buf[mid] ^= 0x04;
        let err = BonsaiTree::decode_state(MemoryCipher::from_seed(99), &mut ByteReader::new(&buf))
            .unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }
}
