//! A functional counter cache over the Bonsai Merkle tree.
//!
//! Section 2.2 of the paper: "Gassend et al. integrated a dedicated cache
//! for the integrity tree to reduce the latency for reading MACs and
//! counters. Intel's SGX implementation has a dedicated cache for MACs
//! and counters." The timing model charges the cache's *latency* effects;
//! this module provides the *functional* semantics:
//!
//! * a cached counter block is an **on-chip, already verified** copy —
//!   reads served from it perform no off-chip access and no tree walk;
//! * writes go through the cache and update the off-chip tree
//!   immediately (write-through, as counter updates must be durable for
//!   crash consistency in NVMM settings);
//! * off-chip tampering of a cached block is invisible while the copy is
//!   cached (the engine never looks at the tampered bits) and detected as
//!   soon as the block is re-fetched — the same observable behaviour as
//!   real metadata caches.

use crate::merkle::{BonsaiTree, VerifyError, NODE_BYTES};
use std::collections::HashMap;

/// Counter-cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CounterCacheStats {
    /// Reads served from the on-chip copy (no walk).
    pub hits: u64,
    /// Reads that required a verified off-chip fetch.
    pub misses: u64,
    /// Cached blocks displaced by fills.
    pub evictions: u64,
}

impl CounterCacheStats {
    /// Hit rate in `[0, 1]`.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl ame_telemetry::Metrics for CounterCacheStats {
    fn record(&self, sink: &mut dyn ame_telemetry::MetricSink) {
        sink.counter("hits", self.hits);
        sink.counter("misses", self.misses);
        sink.counter("evictions", self.evictions);
        sink.gauge("hit_rate", self.hit_rate());
    }
}

/// A Bonsai Merkle tree fronted by an LRU cache of verified counter
/// blocks.
///
/// # Example
///
/// ```
/// use ame_crypto::MemoryCipher;
/// use ame_tree::cache::CachedTree;
/// use ame_tree::merkle::BonsaiTree;
///
/// let tree = BonsaiTree::new(MemoryCipher::from_seed(1), 2, 8);
/// let mut cached = CachedTree::new(tree, 16);
/// cached.write_counter_block(3, [9; 64]);
/// assert_eq!(cached.read_counter_block(3).unwrap(), [9; 64]); // hit
/// assert_eq!(cached.stats().hits, 1);
/// ```
#[derive(Debug)]
pub struct CachedTree {
    tree: BonsaiTree,
    capacity: usize,
    /// On-chip verified copies.
    contents: HashMap<u64, [u8; NODE_BYTES]>,
    /// LRU order, most recent last.
    order: Vec<u64>,
    stats: CounterCacheStats,
}

impl CachedTree {
    /// Wraps `tree` with a cache of `capacity` counter blocks.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(tree: BonsaiTree, capacity: usize) -> Self {
        assert!(capacity > 0, "cache must hold at least one block");
        Self {
            tree,
            capacity,
            contents: HashMap::new(),
            order: Vec::new(),
            stats: CounterCacheStats::default(),
        }
    }

    /// Cache statistics.
    #[must_use]
    pub fn stats(&self) -> CounterCacheStats {
        self.stats
    }

    /// The wrapped tree (e.g. for tampering experiments).
    pub fn tree_mut(&mut self) -> &mut BonsaiTree {
        &mut self.tree
    }

    /// Shared view of the wrapped tree (e.g. for serialization).
    #[must_use]
    pub fn tree(&self) -> &BonsaiTree {
        &self.tree
    }

    fn touch(&mut self, idx: u64) {
        if let Some(pos) = self.order.iter().position(|&i| i == idx) {
            self.order.remove(pos);
        }
        self.order.push(idx);
    }

    fn insert(&mut self, idx: u64, content: [u8; NODE_BYTES]) {
        if !self.contents.contains_key(&idx) && self.contents.len() == self.capacity {
            // Evict the least recently used (write-through: nothing to
            // flush).
            if let Some(pos) = self.order.first().copied() {
                self.order.remove(0);
                self.contents.remove(&pos);
                self.stats.evictions += 1;
            }
        }
        self.contents.insert(idx, content);
        self.touch(idx);
    }

    /// Reads a counter block: from the on-chip copy if cached, otherwise
    /// via a full verified tree walk (then cached).
    ///
    /// # Errors
    ///
    /// Propagates [`VerifyError`] from the underlying tree on a miss.
    pub fn read_counter_block(&mut self, idx: u64) -> Result<[u8; NODE_BYTES], VerifyError> {
        if let Some(&content) = self.contents.get(&idx) {
            self.stats.hits += 1;
            self.touch(idx);
            return Ok(content);
        }
        self.stats.misses += 1;
        let content = self.tree.read_counter_block(idx)?;
        self.insert(idx, content);
        Ok(content)
    }

    /// Writes a counter block through the cache into the tree.
    pub fn write_counter_block(&mut self, idx: u64, content: [u8; NODE_BYTES]) {
        self.tree.write_counter_block(idx, content);
        self.insert(idx, content);
    }

    /// Drops every on-chip copy (e.g. on a power transition), forcing
    /// re-verification on the next access.
    pub fn flush(&mut self) {
        self.contents.clear();
        self.order.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ame_crypto::MemoryCipher;

    fn cached(cap: usize) -> CachedTree {
        CachedTree::new(BonsaiTree::new(MemoryCipher::from_seed(3), 2, 8), cap)
    }

    #[test]
    fn hits_skip_the_walk() {
        let mut c = cached(4);
        c.write_counter_block(1, [5; 64]);
        for _ in 0..10 {
            assert_eq!(c.read_counter_block(1).unwrap(), [5; 64]);
        }
        assert_eq!(c.stats().hits, 10);
        assert_eq!(c.stats().misses, 0);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = cached(2);
        c.write_counter_block(1, [1; 64]);
        c.write_counter_block(2, [2; 64]);
        let _ = c.read_counter_block(1); // 1 is now MRU
        c.write_counter_block(3, [3; 64]); // evicts the LRU, block 2
        assert_eq!(c.stats().evictions, 1);
        let _ = c.read_counter_block(1); // still cached
        assert_eq!(c.stats().misses, 0, "1 must have survived the eviction");
        let _ = c.read_counter_block(2); // miss: was evicted
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn cached_copy_shields_off_chip_tampering_until_eviction() {
        let mut c = cached(1);
        c.write_counter_block(7, [9; 64]);
        // Attacker corrupts the off-chip block while a verified copy is
        // on-chip: the engine keeps using the good copy.
        c.tree_mut().tamper_counter_block(7, |b| b[0] ^= 1);
        assert_eq!(c.read_counter_block(7).unwrap(), [9; 64]);
        // Evict it; the next read re-fetches off-chip and catches the
        // tampering.
        c.write_counter_block(8, [1; 64]);
        assert!(c.read_counter_block(7).is_err());
    }

    #[test]
    fn flush_forces_reverification() {
        let mut c = cached(4);
        c.write_counter_block(7, [9; 64]);
        c.tree_mut().tamper_counter_block(7, |b| b[0] ^= 1);
        assert!(c.read_counter_block(7).is_ok(), "still cached");
        c.flush();
        assert!(c.read_counter_block(7).is_err(), "re-verified after flush");
    }

    #[test]
    fn write_through_survives_eviction() {
        let mut c = cached(1);
        c.write_counter_block(1, [1; 64]);
        c.write_counter_block(2, [2; 64]); // evicts 1 (write-through: safe)
        assert_eq!(c.read_counter_block(1).unwrap(), [1; 64]);
    }

    #[test]
    fn hit_rate_math() {
        let mut c = cached(4);
        c.write_counter_block(0, [0; 64]);
        let _ = c.read_counter_block(0);
        let _ = c.read_counter_block(9); // miss (lazy zero block)
        assert!((c.stats().hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn zero_capacity_panics() {
        let _ = cached(0);
    }
}
