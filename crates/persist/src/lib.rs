//! Checksummed binary framing for the durable storage plane.
//!
//! Every persistent artifact of the store is built from two primitives,
//! both following the `workloads::tracefile` conventions (8-byte magic,
//! little-endian integers, `InvalidData` on anything malformed):
//!
//! * **Sections** — a self-describing envelope for whole-state snapshots:
//!   `magic(8) | version(u32) | len(u64) | payload | crc64`, where the
//!   CRC covers everything before it. A flipped bit anywhere in the file
//!   fails the checksum instead of being silently "corrected" downstream.
//! * **Log records** — the unit of a write-intent log:
//!   `len(u32) | crc64(payload) | payload`. [`scan_wal`] distinguishes a
//!   *torn* tail (a record cut short by a crash — by definition never
//!   acknowledged, so it is discarded) from a *corrupt* record (complete
//!   but failing its CRC — evidence of tampering or media failure, which
//!   must quarantine the shard).
//!
//! The CRC is CRC-64/XZ (ECMA-182 polynomial, reflected), table-driven.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::io;
use std::sync::OnceLock;

/// Reflected ECMA-182 polynomial (CRC-64/XZ).
const CRC64_POLY: u64 = 0xC96C_5795_D787_0F42;

fn crc_table() -> &'static [u64; 256] {
    static TABLE: OnceLock<[u64; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u64; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut crc = i as u64;
            for _ in 0..8 {
                crc = if crc & 1 == 1 {
                    (crc >> 1) ^ CRC64_POLY
                } else {
                    crc >> 1
                };
            }
            *entry = crc;
        }
        table
    })
}

/// CRC-64/XZ of `bytes`.
#[must_use]
pub fn crc64(bytes: &[u8]) -> u64 {
    let table = crc_table();
    let mut crc = !0u64;
    for &b in bytes {
        crc = table[((crc ^ u64::from(b)) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Builds an `InvalidData` error with `msg`.
#[must_use]
pub fn invalid_data(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Appends a little-endian `u32`.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// A cursor over a byte slice with checked little-endian accessors.
///
/// Every accessor returns `UnexpectedEof` when the slice runs out, so
/// decoders bubble truncation up as an I/O error instead of panicking.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Wraps `buf` with the cursor at the start.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes left to read.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// `true` once the cursor has consumed the whole slice.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Takes the next `n` bytes.
    ///
    /// # Errors
    ///
    /// `UnexpectedEof` if fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "truncated input",
            ));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// `UnexpectedEof` at the end of the slice.
    pub fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// `UnexpectedEof` if fewer than 4 bytes remain.
    pub fn u32(&mut self) -> io::Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// `UnexpectedEof` if fewer than 8 bytes remain.
    pub fn u64(&mut self) -> io::Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Reads a fixed-size byte array.
    ///
    /// # Errors
    ///
    /// `UnexpectedEof` if fewer than `N` bytes remain.
    pub fn array<const N: usize>(&mut self) -> io::Result<[u8; N]> {
        let b = self.take(N)?;
        Ok(b.try_into().expect("N bytes"))
    }
}

/// Appends a checksummed section: `magic | version | len | payload | crc64`
/// with the CRC covering everything before it.
pub fn write_section(out: &mut Vec<u8>, magic: &[u8; 8], version: u32, payload: &[u8]) {
    let start = out.len();
    out.extend_from_slice(magic);
    put_u32(out, version);
    put_u64(out, payload.len() as u64);
    out.extend_from_slice(payload);
    let crc = crc64(&out[start..]);
    put_u64(out, crc);
}

/// Reads one section, verifying magic and checksum; the cursor advances
/// past the section. Returns the stored version and a sub-reader over the
/// payload — version checking is the caller's (per-format) business.
///
/// # Errors
///
/// `InvalidData` for a wrong magic, truncated body, or checksum mismatch.
pub fn read_section<'a>(
    r: &mut ByteReader<'a>,
    magic: &[u8; 8],
) -> io::Result<(u32, ByteReader<'a>)> {
    let start = r.pos;
    let found: [u8; 8] = r
        .array()
        .map_err(|_| invalid_data("truncated section header"))?;
    if &found != magic {
        return Err(invalid_data(format!(
            "bad section magic: expected {magic:?}, found {found:?}"
        )));
    }
    let version = r.u32().map_err(|_| invalid_data("truncated section"))?;
    let len = r.u64().map_err(|_| invalid_data("truncated section"))? as usize;
    let payload = r.take(len).map_err(|_| invalid_data("truncated section"))?;
    let covered = &r.buf[start..r.pos];
    let stored = r.u64().map_err(|_| invalid_data("truncated section"))?;
    if crc64(covered) != stored {
        return Err(invalid_data("section checksum mismatch"));
    }
    Ok((version, ByteReader::new(payload)))
}

/// Frames one write-intent log record: `len(u32) | crc64(payload) | payload`.
#[must_use]
pub fn frame_record(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(12 + payload.len());
    put_u32(&mut out, payload.len() as u32);
    put_u64(&mut out, crc64(payload));
    out.extend_from_slice(payload);
    out
}

/// The result of scanning a write-intent log.
#[derive(Debug)]
pub struct WalScan {
    /// Payloads of every intact record, in append order.
    pub records: Vec<Vec<u8>>,
    /// Length of the intact prefix in bytes; a recovering store truncates
    /// the log here to drop a torn tail.
    pub valid_len: u64,
    /// `true` if a trailing partial record was discarded (a crash mid
    /// append — by construction the write it logged was never
    /// acknowledged).
    pub torn: bool,
}

/// Scans a write-intent log image into records.
///
/// A record cut short by the end of the file (partial header or declared
/// length past EOF) is a **torn tail**: discarded, reported via
/// [`WalScan::torn`]. A record that is complete but fails its CRC is
/// **corruption** and returns `InvalidData` — the caller must quarantine,
/// never serve, that state.
///
/// # Errors
///
/// `InvalidData` when a complete record fails its checksum.
pub fn scan_wal(bytes: &[u8]) -> io::Result<WalScan> {
    let mut records = Vec::new();
    let mut pos = 0usize;
    loop {
        if pos == bytes.len() {
            return Ok(WalScan {
                records,
                valid_len: pos as u64,
                torn: false,
            });
        }
        let rest = bytes.len() - pos;
        if rest < 12 {
            return Ok(WalScan {
                records,
                valid_len: pos as u64,
                torn: true,
            });
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let stored = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().expect("8 bytes"));
        if rest - 12 < len {
            return Ok(WalScan {
                records,
                valid_len: pos as u64,
                torn: true,
            });
        }
        let payload = &bytes[pos + 12..pos + 12 + len];
        if crc64(payload) != stored {
            return Err(invalid_data("write-intent log record checksum mismatch"));
        }
        records.push(payload.to_vec());
        pos += 12 + len;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc64_check_value() {
        // The CRC-64/XZ reference check value.
        assert_eq!(crc64(b"123456789"), 0x995D_C9BB_DF19_39FA);
        assert_eq!(crc64(b""), 0);
    }

    #[test]
    fn crc64_detects_single_bit_flips() {
        let mut data = vec![0u8; 256];
        for (i, b) in data.iter_mut().enumerate() {
            *b = i as u8;
        }
        let clean = crc64(&data);
        for bit in [0usize, 7, 100, 2047] {
            let mut flipped = data.clone();
            flipped[bit / 8] ^= 1 << (bit % 8);
            assert_ne!(crc64(&flipped), clean, "bit {bit}");
        }
    }

    #[test]
    fn reader_reads_and_reports_eof() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 7);
        put_u64(&mut buf, 9);
        buf.push(3);
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.u32().unwrap(), 7);
        assert_eq!(r.u64().unwrap(), 9);
        assert_eq!(r.u8().unwrap(), 3);
        assert!(r.is_empty());
        assert_eq!(r.u8().unwrap_err().kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn section_roundtrip() {
        let mut buf = Vec::new();
        write_section(&mut buf, b"AMETEST\0", 3, b"hello");
        put_u64(&mut buf, 42); // trailing data after the section
        let mut r = ByteReader::new(&buf);
        let (version, mut payload) = read_section(&mut r, b"AMETEST\0").unwrap();
        assert_eq!(version, 3);
        assert_eq!(payload.take(5).unwrap(), b"hello");
        assert!(payload.is_empty());
        assert_eq!(r.u64().unwrap(), 42, "cursor sits after the section");
    }

    #[test]
    fn section_rejects_wrong_magic() {
        let mut buf = Vec::new();
        write_section(&mut buf, b"AMETEST\0", 1, b"x");
        let err = read_section(&mut ByteReader::new(&buf), b"AMEOTHER").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn section_rejects_any_flipped_bit() {
        let mut buf = Vec::new();
        write_section(&mut buf, b"AMETEST\0", 1, &[0xAB; 32]);
        // Flip one bit at every byte position (skipping the magic, whose
        // corruption is reported as a magic mismatch — also InvalidData).
        for i in 8..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0x10;
            let err = read_section(&mut ByteReader::new(&bad), b"AMETEST\0").unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "byte {i}");
        }
    }

    #[test]
    fn section_rejects_truncation() {
        let mut buf = Vec::new();
        write_section(&mut buf, b"AMETEST\0", 1, &[7; 16]);
        for cut in [buf.len() - 1, buf.len() - 9, 10, 3] {
            let err = read_section(&mut ByteReader::new(&buf[..cut]), b"AMETEST\0").unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "cut {cut}");
        }
    }

    #[test]
    fn wal_scan_clean() {
        let mut log = Vec::new();
        log.extend_from_slice(&frame_record(b"first"));
        log.extend_from_slice(&frame_record(b""));
        log.extend_from_slice(&frame_record(&[9; 100]));
        let scan = scan_wal(&log).unwrap();
        assert_eq!(scan.records.len(), 3);
        assert_eq!(scan.records[0], b"first");
        assert_eq!(scan.records[1], b"");
        assert_eq!(scan.records[2], vec![9; 100]);
        assert_eq!(scan.valid_len, log.len() as u64);
        assert!(!scan.torn);
    }

    #[test]
    fn wal_scan_empty() {
        let scan = scan_wal(&[]).unwrap();
        assert!(scan.records.is_empty());
        assert_eq!(scan.valid_len, 0);
        assert!(!scan.torn);
    }

    #[test]
    fn wal_torn_tail_is_discarded_not_an_error() {
        let mut log = Vec::new();
        log.extend_from_slice(&frame_record(b"kept"));
        let keep = log.len() as u64;
        log.extend_from_slice(&frame_record(b"torn-away"));
        for cut in [keep as usize + 3, keep as usize + 12, log.len() - 1] {
            let scan = scan_wal(&log[..cut]).unwrap();
            assert_eq!(scan.records.len(), 1, "cut {cut}");
            assert_eq!(scan.valid_len, keep);
            assert!(scan.torn);
        }
    }

    #[test]
    fn wal_corrupt_record_is_an_error() {
        let mut log = Vec::new();
        log.extend_from_slice(&frame_record(b"target"));
        log.extend_from_slice(&frame_record(b"after"));
        let mut bad = log.clone();
        bad[13] ^= 1; // flip a payload bit of the first (complete) record
        let err = scan_wal(&bad).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
