//! Frame-of-reference delta encoding of counters (Section 4 of the paper).
//!
//! Each block-group stores one 56-bit **reference** counter plus one small
//! **delta** per block; a block's counter is `reference + delta`. Because
//! deltas are *offsets* (not positional digits like split-counter minors),
//! two representation changes can absorb write traffic without touching
//! the encrypted data:
//!
//! * **Delta reset** (Figure 5b): when every delta in a group converges to
//!   the same value `d`, fold it into the reference (`ref += d`, deltas to
//!   zero). Counter values are unchanged.
//! * **Re-encoding** (Figure 5c): on overflow, subtract the minimum delta
//!   from all deltas and add it to the reference. Effective whenever
//!   `min(delta) > 0`.
//!
//! Only when both fail does the group get re-encrypted under a fresh
//! counter (Figure 5a).

use crate::{codec, split_block, CounterScheme, CounterStats, WriteOutcome};
use ame_persist::{invalid_data, put_u32, put_u64, ByteReader};
use std::collections::HashMap;
use std::io;

/// Configuration of a flat (single-width) delta-encoding scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaConfig {
    /// Width of each delta in bits (the paper evaluates 7).
    pub delta_bits: u32,
    /// Blocks per group (the paper uses 64 => 4 KB groups).
    pub blocks_per_group: usize,
    /// Width of the shared reference counter in bits (56, as in SGX).
    pub reference_bits: u32,
    /// Enables the convergence-reset optimization (Figure 5b).
    pub reset_enabled: bool,
    /// Enables the min-subtraction re-encoding optimization (Figure 5c).
    pub reencode_enabled: bool,
}

impl Default for DeltaConfig {
    /// The paper's configuration: 7-bit deltas, 64-block groups, 56-bit
    /// reference, both optimizations on.
    fn default() -> Self {
        Self {
            delta_bits: 7,
            blocks_per_group: 64,
            reference_bits: 56,
            reset_enabled: true,
            reencode_enabled: true,
        }
    }
}

impl DeltaConfig {
    /// Largest representable delta.
    #[must_use]
    pub fn delta_max(&self) -> u64 {
        (1u64 << self.delta_bits) - 1
    }

    /// Validates invariants; called by [`DeltaCounters::new`].
    fn validate(&self) {
        assert!(
            self.delta_bits > 0 && self.delta_bits < 32,
            "delta width must be 1..32"
        );
        assert!(
            self.blocks_per_group > 0,
            "group must hold at least one block"
        );
        assert!(
            self.reference_bits > 0 && self.reference_bits <= 64,
            "reference width must be 1..=64"
        );
    }
}

#[derive(Debug, Clone)]
struct Group {
    reference: u64,
    deltas: Vec<u64>,
}

impl Group {
    fn counters(&self) -> Vec<u64> {
        self.deltas.iter().map(|d| self.reference + d).collect()
    }
}

/// Flat delta-encoded counters with reset and re-encode optimizations.
///
/// # Example
///
/// ```
/// use ame_counters::{CounterScheme, delta::DeltaCounters};
///
/// let mut ctrs = DeltaCounters::default();
/// // A sequential sweep writes every block in the group once...
/// for block in 0..64 {
///     ctrs.record_write(block);
/// }
/// // ...so all deltas converged to 1 and were folded into the reference.
/// assert_eq!(ctrs.stats().resets, 1);
/// assert_eq!(ctrs.counter(0), 1);
/// ```
#[derive(Debug, Clone)]
pub struct DeltaCounters {
    groups: HashMap<u64, Group>,
    config: DeltaConfig,
    stats: CounterStats,
}

impl DeltaCounters {
    /// Creates a delta-counter scheme from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (zero-size group, delta
    /// width outside `1..32`, reference width outside `1..=64`).
    #[must_use]
    pub fn new(config: DeltaConfig) -> Self {
        config.validate();
        Self {
            groups: HashMap::new(),
            config,
            stats: CounterStats::default(),
        }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &DeltaConfig {
        &self.config
    }

    /// Current delta of `block` (for inspection/ablation experiments).
    #[must_use]
    pub fn delta(&self, block: u64) -> u64 {
        let (g, i) = split_block(block, self.config.blocks_per_group);
        self.groups.get(&g).map_or(0, |grp| grp.deltas[i])
    }

    /// Current reference value of the group containing `block`.
    #[must_use]
    pub fn reference(&self, block: u64) -> u64 {
        let (g, _) = split_block(block, self.config.blocks_per_group);
        self.groups.get(&g).map_or(0, |grp| grp.reference)
    }
}

impl Default for DeltaCounters {
    fn default() -> Self {
        Self::new(DeltaConfig::default())
    }
}

impl CounterScheme for DeltaCounters {
    fn counter(&self, block: u64) -> u64 {
        let (g, i) = split_block(block, self.config.blocks_per_group);
        self.groups
            .get(&g)
            .map_or(0, |grp| grp.reference + grp.deltas[i])
    }

    fn record_write(&mut self, block: u64) -> WriteOutcome {
        let (g, i) = split_block(block, self.config.blocks_per_group);
        let cfg = self.config;
        let grp = self.groups.entry(g).or_insert_with(|| Group {
            reference: 0,
            deltas: vec![0; cfg.blocks_per_group],
        });

        let outcome = if grp.deltas[i] < cfg.delta_max() {
            grp.deltas[i] += 1;
            // Figure 5b: fold converged deltas into the reference.
            let first = grp.deltas[0];
            if cfg.reset_enabled && first > 0 && grp.deltas.iter().all(|&d| d == first) {
                grp.reference += first;
                grp.deltas.iter_mut().for_each(|d| *d = 0);
                WriteOutcome::Reset
            } else {
                WriteOutcome::Incremented
            }
        } else {
            // Overflow. Figure 5c: re-encode with a larger reference if
            // every delta is positive.
            let min = grp.deltas.iter().copied().min().unwrap_or(0);
            if cfg.reencode_enabled && min > 0 {
                grp.reference += min;
                grp.deltas.iter_mut().for_each(|d| *d -= min);
                grp.deltas[i] += 1;
                WriteOutcome::Reencoded
            } else {
                // Figure 5a: re-encrypt the group under the largest
                // counter (the overflowing one, incremented).
                let old_counters = grp.counters();
                let new_counter = grp.reference + cfg.delta_max() + 1;
                grp.reference = new_counter;
                grp.deltas.iter_mut().for_each(|d| *d = 0);
                WriteOutcome::Reencrypted {
                    group: g,
                    old_counters,
                    new_counter,
                }
            }
        };
        self.stats.record(&outcome);
        outcome
    }

    fn bits_per_block(&self) -> f64 {
        f64::from(self.config.delta_bits)
            + f64::from(self.config.reference_bits) / self.config.blocks_per_group as f64
    }

    fn blocks_per_group(&self) -> usize {
        self.config.blocks_per_group
    }

    fn stats(&self) -> CounterStats {
        self.stats
    }

    fn name(&self) -> &'static str {
        "delta"
    }

    fn blocks_per_metadata_block(&self) -> usize {
        self.config.blocks_per_group
    }

    /// Packs `reference (reference_bits) || deltas (delta_bits each)` —
    /// 504 bits for the paper's 7-bit/64-block configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configured layout exceeds one 64-byte block.
    fn metadata_block_image(&self, meta_block: u64) -> [u8; 64] {
        let cfg = &self.config;
        let bits = cfg.reference_bits + cfg.delta_bits * cfg.blocks_per_group as u32;
        assert!(bits <= 512, "delta group does not fit one metadata block");
        let mut image = [0u8; 64];
        let (reference, deltas) = match self.groups.get(&meta_block) {
            Some(grp) => (grp.reference, grp.deltas.clone()),
            None => (0, vec![0; cfg.blocks_per_group]),
        };
        crate::packing::write_bits(&mut image, 0, cfg.reference_bits, reference);
        for (i, &d) in deltas.iter().enumerate() {
            crate::packing::write_bits(
                &mut image,
                cfg.reference_bits + cfg.delta_bits * i as u32,
                cfg.delta_bits,
                d,
            );
        }
        image
    }

    fn encode_state(&self, out: &mut Vec<u8>) {
        let cfg = &self.config;
        let mut body = Vec::new();
        put_u32(&mut body, cfg.delta_bits);
        put_u64(&mut body, cfg.blocks_per_group as u64);
        put_u32(&mut body, cfg.reference_bits);
        body.push(u8::from(cfg.reset_enabled));
        body.push(u8::from(cfg.reencode_enabled));
        codec::put_stats(&mut body, &self.stats);
        let mut indices: Vec<u64> = self.groups.keys().copied().collect();
        indices.sort_unstable();
        put_u64(&mut body, indices.len() as u64);
        for idx in indices {
            let grp = &self.groups[&idx];
            put_u64(&mut body, idx);
            put_u64(&mut body, grp.reference);
            for &d in &grp.deltas {
                put_u64(&mut body, d);
            }
        }
        codec::write_state(out, self.name(), &body);
    }

    fn decode_state(&mut self, r: &mut ByteReader<'_>) -> io::Result<()> {
        let mut body = codec::read_state(r, self.name())?;
        let config = DeltaConfig {
            delta_bits: body.u32()?,
            blocks_per_group: body.u64()? as usize,
            reference_bits: body.u32()?,
            reset_enabled: body.u8()? != 0,
            reencode_enabled: body.u8()? != 0,
        };
        if config.delta_bits == 0
            || config.delta_bits >= 32
            || config.blocks_per_group == 0
            || config.reference_bits == 0
            || config.reference_bits > 64
        {
            return Err(invalid_data("inconsistent delta configuration"));
        }
        let stats = codec::read_stats(&mut body)?;
        let count = body.u64()? as usize;
        let mut groups = HashMap::with_capacity(count.min(1 << 24));
        for _ in 0..count {
            let idx = body.u64()?;
            let reference = body.u64()?;
            let mut deltas = Vec::with_capacity(config.blocks_per_group);
            for _ in 0..config.blocks_per_group {
                let d = body.u64()?;
                if d > config.delta_max() {
                    return Err(invalid_data("delta exceeds its width"));
                }
                deltas.push(d);
            }
            groups.insert(idx, Group { reference, deltas });
        }
        self.config = config;
        self.stats = stats;
        self.groups = groups;
        Ok(())
    }

    /// Restores a counter *value* by re-deriving the group encoding: the
    /// reference becomes the group's minimum counter and every delta the
    /// offset above it. Fails only when the resulting spread exceeds the
    /// delta width — impossible for an honest log, which rotates into a
    /// snapshot at every re-encryption.
    fn force_counter(&mut self, block: u64, value: u64) -> io::Result<()> {
        let (g, i) = split_block(block, self.config.blocks_per_group);
        let cfg = self.config;
        let grp = self.groups.entry(g).or_insert_with(|| Group {
            reference: 0,
            deltas: vec![0; cfg.blocks_per_group],
        });
        let mut counters = grp.counters();
        counters[i] = value;
        let min = counters.iter().copied().min().expect("non-empty group");
        let max = counters.iter().copied().max().expect("non-empty group");
        if max - min > cfg.delta_max() {
            return Err(invalid_data(
                "replayed counter not representable in its delta group",
            ));
        }
        grp.reference = min;
        for (d, c) in grp.deltas.iter_mut().zip(&counters) {
            *d = c - min;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::split::SplitCounters as SplitScheme;

    fn small() -> DeltaCounters {
        DeltaCounters::new(DeltaConfig {
            delta_bits: 3, // max delta 7
            blocks_per_group: 4,
            reference_bits: 56,
            reset_enabled: true,
            reencode_enabled: true,
        })
    }

    #[test]
    fn counters_strictly_increase_per_block() {
        let mut c = small();
        let mut last = [0u64; 4];
        for round in 0..100 {
            let b = (round % 4) as u64;
            c.record_write(b);
            let now = c.counter(b);
            assert!(now > last[b as usize], "round {round}");
            // Counters of other blocks must never decrease either.
            for o in 0..4u64 {
                assert!(c.counter(o) >= last[o as usize]);
                last[o as usize] = c.counter(o);
            }
        }
    }

    #[test]
    fn paper_figure_5a_reencryption() {
        // Hammer one block; reset and re-encode can't help (min delta 0).
        let mut c = small();
        for _ in 0..7 {
            assert!(!c.record_write(0).is_reencryption());
        }
        let outcome = c.record_write(0);
        match outcome {
            WriteOutcome::Reencrypted {
                group,
                old_counters,
                new_counter,
            } => {
                assert_eq!(group, 0);
                assert_eq!(old_counters, vec![7, 0, 0, 0]);
                assert_eq!(new_counter, 8);
            }
            other => panic!("expected re-encryption, got {other:?}"),
        }
        // All counters jump to the fresh value.
        for b in 0..4 {
            assert_eq!(c.counter(b), 8);
        }
    }

    #[test]
    fn paper_figure_5b_reset() {
        // Uniform sweeps converge all deltas; no re-encryption ever.
        let mut c = small();
        for sweep in 1..=50u64 {
            for b in 0..4 {
                let out = c.record_write(b);
                if b == 3 {
                    assert_eq!(out, WriteOutcome::Reset, "sweep {sweep}");
                } else {
                    assert_eq!(out, WriteOutcome::Incremented);
                }
            }
            // After each full sweep the deltas fold into the reference.
            assert_eq!(c.reference(0), sweep);
            for b in 0..4 {
                assert_eq!(c.counter(b), sweep);
                assert_eq!(c.delta(b), 0);
            }
        }
        assert_eq!(c.stats().resets, 50);
        assert_eq!(c.stats().reencryptions, 0);
    }

    #[test]
    fn paper_figure_5c_reencode() {
        // Figure 5c: deltas [11,12,12,127] with 7-bit storage; the write
        // to the last block would overflow, but min subtraction saves it.
        let mut c = DeltaCounters::default();
        let write_n = |c: &mut DeltaCounters, b: u64, n: u64| {
            for _ in 0..n {
                c.record_write(b);
            }
        };
        write_n(&mut c, 0, 11);
        write_n(&mut c, 1, 12);
        write_n(&mut c, 2, 12);
        write_n(&mut c, 3, 127);
        // Remaining 60 blocks of the group also need positive deltas for
        // re-encoding to fire.
        for b in 4..64 {
            write_n(&mut c, b, 11);
        }
        let before: Vec<u64> = (0..64).map(|b| c.counter(b)).collect();
        let out = c.record_write(3);
        assert_eq!(out, WriteOutcome::Reencoded);
        assert_eq!(c.reference(0), 11, "reference grew by the minimum delta");
        assert_eq!(c.counter(3), before[3] + 1);
        for b in 0..3u64 {
            assert_eq!(c.counter(b), before[b as usize], "other counters unchanged");
        }
        assert_eq!(c.stats().reencryptions, 0);
    }

    #[test]
    fn reencode_disabled_falls_back_to_reencryption() {
        let mut cfg = DeltaConfig {
            delta_bits: 3,
            blocks_per_group: 2,
            ..Default::default()
        };
        cfg.reencode_enabled = false;
        cfg.reset_enabled = false;
        let mut c = DeltaCounters::new(cfg);
        for _ in 0..7 {
            c.record_write(0);
        }
        c.record_write(1); // min delta now 1, but re-encode is off
        assert!(c.record_write(0).is_reencryption());
    }

    #[test]
    fn reset_disabled_never_resets() {
        let mut cfg = DeltaConfig {
            delta_bits: 3,
            blocks_per_group: 2,
            ..Default::default()
        };
        cfg.reset_enabled = false;
        let mut c = DeltaCounters::new(cfg);
        for _ in 0..3 {
            c.record_write(0);
            c.record_write(1);
        }
        assert_eq!(c.stats().resets, 0);
        assert_eq!(c.delta(0), 3);
    }

    #[test]
    fn storage_cost_matches_paper() {
        // 7-bit deltas + 56-bit reference / 64 blocks = 7.875 bits/block,
        // vs 56 for monolithic: the paper's "6x smaller" (Section 4.2 says
        // a 56-bit reference and 64 deltas fit one 64-byte block).
        let c = DeltaCounters::default();
        assert!((c.bits_per_block() - 7.875).abs() < 1e-9);
        assert!(56.0 / c.bits_per_block() > 6.0);
    }

    #[test]
    fn groups_do_not_interfere() {
        let mut c = small();
        for _ in 0..8 {
            c.record_write(0); // group 0 re-encrypts
        }
        assert_eq!(c.counter(4), 0, "group 1 untouched");
        assert_eq!(c.reference(4), 0);
    }

    #[test]
    fn metadata_image_matches_flat_packing() {
        use crate::packing::FlatGroup;
        let mut c = DeltaCounters::default();
        for b in 0..10 {
            for _ in 0..=b {
                c.record_write(b);
            }
        }
        let image = c.metadata_block_image(0);
        let unpacked = FlatGroup::unpack(&image);
        assert_eq!(unpacked.reference, c.reference(0));
        for b in 0..64u64 {
            assert_eq!(unpacked.deltas[b as usize], c.delta(b), "block {b}");
            assert_eq!(FlatGroup::decode_counter(&image, b as usize), c.counter(b));
        }
        // Unallocated group images are all zero.
        assert_eq!(c.metadata_block_image(99), [0u8; 64]);
    }

    #[test]
    fn lazy_groups_default_to_zero() {
        let c = DeltaCounters::default();
        assert_eq!(c.counter(123_456), 0);
        assert_eq!(c.delta(123_456), 0);
        assert_eq!(c.reference(123_456), 0);
    }

    #[test]
    fn state_roundtrip_and_force() {
        let mut c = small();
        for b in 0..4u64 {
            for _ in 0..=b {
                c.record_write(b);
            }
        }
        c.record_write(5); // second group
        let mut buf = Vec::new();
        c.encode_state(&mut buf);
        let mut back = DeltaCounters::default();
        back.decode_state(&mut ByteReader::new(&buf)).unwrap();
        assert_eq!(back.config(), c.config(), "configuration is adopted");
        assert_eq!(back.stats(), c.stats());
        for b in 0..8u64 {
            assert_eq!(back.counter(b), c.counter(b), "block {b}");
        }
        // Forcing a nearby value re-derives the encoding around it.
        let next = c.counter(3) + 1;
        back.force_counter(3, next).unwrap();
        assert_eq!(back.counter(3), next);
        for b in 0..3u64 {
            assert_eq!(back.counter(b), c.counter(b), "other counters intact");
        }
        // A value too far from the group's spread is unrepresentable.
        assert!(back.force_counter(0, next + 100).is_err());
        // Forcing into an untouched group works from the zero state.
        back.force_counter(100, 6).unwrap();
        assert_eq!(back.counter(100), 6);
    }

    #[test]
    fn decode_rejects_wrong_scheme() {
        let c = SplitScheme::default();
        let mut buf = Vec::new();
        c.encode_state(&mut buf);
        let mut d = DeltaCounters::default();
        let err = d.decode_state(&mut ByteReader::new(&buf)).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("scheme mismatch"));
    }
}
