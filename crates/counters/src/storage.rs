//! Analytic storage-overhead math used by the Figure 1 reproduction.
//!
//! All fractions are relative to the protected data capacity (one 64-byte
//! block = 512 bits of data).

/// Bits of data per protected block.
pub const DATA_BLOCK_BITS: f64 = 512.0;

/// Fraction of data capacity consumed by a metadata field of
/// `bits_per_block` bits per 64-byte block.
///
/// # Example
///
/// ```
/// use ame_counters::storage::overhead_fraction;
///
/// // 56-bit counters per block: the paper's ~11%.
/// let f = overhead_fraction(56.0);
/// assert!((f - 0.109375).abs() < 1e-12);
/// ```
#[must_use]
pub fn overhead_fraction(bits_per_block: f64) -> f64 {
    bits_per_block / DATA_BLOCK_BITS
}

/// Per-component storage overhead of one protection configuration,
/// expressed as fractions of the protected data capacity.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StorageBreakdown {
    /// Encryption counters.
    pub counters: f64,
    /// MAC tags stored in dedicated DRAM (zero when merged into ECC).
    pub macs: f64,
    /// SEC-DED ECC bits (12.5% when present; zero if the platform has no
    /// ECC, or if the side-band is repurposed for MACs the 12.5% is
    /// reported here since the chips still exist).
    pub ecc: f64,
    /// ECC bits protecting the dedicated MAC region (the paper notes "the
    /// MAC bits themselves need to be protected using ECC bits").
    pub mac_ecc: f64,
    /// Integrity-tree nodes (computed from tree geometry, passed in).
    pub tree: f64,
}

impl StorageBreakdown {
    /// Total metadata overhead as a fraction of data capacity.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.counters + self.macs + self.ecc + self.mac_ecc + self.tree
    }

    /// Total excluding the ECC side-band (the paper's "encryption metadata"
    /// number: ECC chips are assumed present either way).
    #[must_use]
    pub fn encryption_metadata(&self) -> f64 {
        self.counters + self.macs + self.mac_ecc + self.tree
    }
}

/// Builds a breakdown for a *separate-MAC* configuration (the baseline):
/// counters and 56-bit MACs in dedicated DRAM, optional SEC-DED ECC.
#[must_use]
pub fn separate_mac_breakdown(
    counter_bits_per_block: f64,
    ecc: bool,
    tree_fraction: f64,
) -> StorageBreakdown {
    let macs = overhead_fraction(56.0);
    StorageBreakdown {
        counters: overhead_fraction(counter_bits_per_block),
        macs,
        ecc: if ecc { 0.125 } else { 0.0 },
        // The MAC region itself is ECC-protected on an ECC machine.
        mac_ecc: if ecc { macs * 0.125 } else { 0.0 },
        tree: tree_fraction,
    }
}

/// Builds a breakdown for the paper's *MAC-in-ECC* configuration: MACs live
/// in the ECC side-band (no dedicated MAC storage, no extra MAC-ECC).
#[must_use]
pub fn mac_in_ecc_breakdown(counter_bits_per_block: f64, tree_fraction: f64) -> StorageBreakdown {
    StorageBreakdown {
        counters: overhead_fraction(counter_bits_per_block),
        macs: 0.0,
        ecc: 0.125, // the side-band still physically exists
        mac_ecc: 0.0,
        tree: tree_fraction,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_headline_numbers() {
        // Baseline (Fig. 1a): 56-bit counters + 56-bit MACs ~ 21.9% before
        // the tree.
        let b = separate_mac_breakdown(56.0, false, 0.0);
        assert!((b.encryption_metadata() - 0.21875).abs() < 1e-9);

        // Optimized (Fig. 1b): delta counters (7.875 bits/block) and MACs
        // merged into ECC ~ 1.5% before the tree — the "~2%" claim.
        let o = mac_in_ecc_breakdown(7.875, 0.0);
        assert!(o.encryption_metadata() < 0.02);
        assert!(o.encryption_metadata() > 0.01);
    }

    #[test]
    fn ecc_plus_separate_mac_costs_a_quarter() {
        // Section 3.1: "these storage overheads add up to around 1/4th of
        // the protected DRAM space".
        let b = separate_mac_breakdown(56.0, true, 0.0);
        let ecc_and_mac = b.macs + b.ecc + b.mac_ecc;
        assert!(
            ecc_and_mac > 0.23 && ecc_and_mac < 0.26,
            "got {ecc_and_mac}"
        );
    }

    #[test]
    fn merged_ecc_is_just_ecc() {
        // Section 3.1: merging reduces the ECC+MAC overhead to 12.5%.
        let o = mac_in_ecc_breakdown(0.0, 0.0);
        assert_eq!(o.macs + o.ecc + o.mac_ecc, 0.125);
    }

    #[test]
    fn totals_add_up() {
        let b = StorageBreakdown {
            counters: 0.1,
            macs: 0.1,
            ecc: 0.125,
            mac_ecc: 0.0125,
            tree: 0.01,
        };
        assert!((b.total() - 0.3475).abs() < 1e-12);
        assert!((b.encryption_metadata() - 0.2225).abs() < 1e-12);
    }
}
