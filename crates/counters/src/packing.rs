//! Bit-exact packing of delta-encoded counter groups into 64-byte metadata
//! blocks, plus the decode operation the paper's hardware Decode Unit
//! performs (Section 4.4 / Figure 7).
//!
//! The paper stresses that "the decryption pipeline will perform better if
//! both the reference value and the associated deltas are stored in the
//! same memory block". These layouts make that constraint concrete:
//!
//! * **Flat 7-bit layout**: 56-bit reference + 64 x 7-bit deltas =
//!   504 bits <= 512.
//! * **Dual-length layout** (Figure 6): 56-bit reference + 1 valid bit +
//!   2 group-index bits + 64 x 6-bit deltas + 16 x 4-bit overflow
//!   extensions = 507 bits <= 512.
//!
//! Decoding a counter is a bit extraction plus one addition — the logic the
//! paper synthesized to 2 cycles at 4 GHz. [`DECODE_LATENCY_CYCLES`]
//! carries that number into the performance model.

/// Decode-unit latency in CPU cycles, from the paper's 45 nm synthesis
/// result (Section 5.3): "the decoding logic is able to complete within 2
/// cycles for frequencies up to 4GHz".
pub const DECODE_LATENCY_CYCLES: u64 = 2;

/// Blocks per group in both packed layouts.
pub const GROUP_BLOCKS: usize = 64;

const REF_BITS: u32 = 56;
const FLAT_DELTA_BITS: u32 = 7;
const DUAL_BASE_BITS: u32 = 6;
const DUAL_EXTRA_BITS: u32 = 4;
const DUAL_GROUPS: usize = 4;
const DUAL_BLOCKS_PER_DG: usize = GROUP_BLOCKS / DUAL_GROUPS;

/// Reads `width` bits (LSB-first) starting at bit `offset` of `block`.
#[must_use]
pub fn read_bits(block: &[u8; 64], offset: u32, width: u32) -> u64 {
    debug_assert!(width <= 64 && offset + width <= 512);
    let mut value = 0u64;
    for i in 0..width {
        let bit = offset + i;
        let byte = (bit / 8) as usize;
        let shift = bit % 8;
        value |= u64::from(block[byte] >> shift & 1) << i;
    }
    value
}

/// Writes `width` bits of `value` (LSB-first) at bit `offset` of `block`.
pub fn write_bits(block: &mut [u8; 64], offset: u32, width: u32, value: u64) {
    debug_assert!(width <= 64 && offset + width <= 512);
    debug_assert!(
        width == 64 || value < (1u64 << width),
        "value exceeds field width"
    );
    for i in 0..width {
        let bit = offset + i;
        let byte = (bit / 8) as usize;
        let shift = bit % 8;
        let mask = 1u8 << shift;
        if value >> i & 1 == 1 {
            block[byte] |= mask;
        } else {
            block[byte] &= !mask;
        }
    }
}

/// A flat-layout counter group: 56-bit reference + 64 x 7-bit deltas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlatGroup {
    /// Shared 56-bit reference counter.
    pub reference: u64,
    /// The 64 per-block deltas, each `< 128`.
    pub deltas: [u64; GROUP_BLOCKS],
}

impl FlatGroup {
    /// Packs the group into one 64-byte metadata block.
    ///
    /// # Panics
    ///
    /// Panics if the reference exceeds 56 bits or any delta exceeds 7 bits.
    #[must_use]
    pub fn pack(&self) -> [u8; 64] {
        assert!(
            self.reference < 1u64 << REF_BITS,
            "reference exceeds 56 bits"
        );
        let mut block = [0u8; 64];
        write_bits(&mut block, 0, REF_BITS, self.reference);
        for (i, &d) in self.deltas.iter().enumerate() {
            assert!(d < 1u64 << FLAT_DELTA_BITS, "delta {i} exceeds 7 bits");
            write_bits(
                &mut block,
                REF_BITS + FLAT_DELTA_BITS * i as u32,
                FLAT_DELTA_BITS,
                d,
            );
        }
        block
    }

    /// Unpacks a metadata block into its reference and deltas.
    #[must_use]
    pub fn unpack(block: &[u8; 64]) -> Self {
        let reference = read_bits(block, 0, REF_BITS);
        let mut deltas = [0u64; GROUP_BLOCKS];
        for (i, d) in deltas.iter_mut().enumerate() {
            *d = read_bits(
                block,
                REF_BITS + FLAT_DELTA_BITS * i as u32,
                FLAT_DELTA_BITS,
            );
        }
        Self { reference, deltas }
    }

    /// The Decode Unit operation: extract one delta and add the reference
    /// (a bit extraction and an add — 2 hardware cycles).
    ///
    /// # Panics
    ///
    /// Panics if `index >= 64`.
    #[must_use]
    pub fn decode_counter(block: &[u8; 64], index: usize) -> u64 {
        assert!(index < GROUP_BLOCKS, "block index out of group");
        let reference = read_bits(block, 0, REF_BITS);
        let delta = read_bits(
            block,
            REF_BITS + FLAT_DELTA_BITS * index as u32,
            FLAT_DELTA_BITS,
        );
        reference + delta
    }
}

/// A dual-length-layout counter group (Figure 6): 56-bit reference, four
/// delta-groups of sixteen 6-bit deltas, and 64 shared overflow bits that
/// widen one delta-group's deltas to 10 bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DualGroup {
    /// Shared 56-bit reference counter.
    pub reference: u64,
    /// The 64 per-block deltas. Deltas in the expanded delta-group may use
    /// 10 bits; all others must fit 6 bits.
    pub deltas: [u64; GROUP_BLOCKS],
    /// Which delta-group (0..4) holds the overflow bits, if any.
    pub expanded: Option<usize>,
}

// Dual layout bit offsets.
const DUAL_VALID_OFF: u32 = REF_BITS; // 1 bit: expansion valid
const DUAL_INDEX_OFF: u32 = DUAL_VALID_OFF + 1; // 2 bits: expanded group
const DUAL_BASE_OFF: u32 = DUAL_INDEX_OFF + 2; // 64 x 6-bit base deltas
const DUAL_EXT_OFF: u32 = DUAL_BASE_OFF + DUAL_BASE_BITS * GROUP_BLOCKS as u32; // 16 x 4

impl DualGroup {
    /// Total bits used by the layout (507 for the paper's parameters).
    pub const USED_BITS: u32 = DUAL_EXT_OFF + DUAL_EXTRA_BITS * DUAL_BLOCKS_PER_DG as u32;

    /// Packs the group into one 64-byte metadata block.
    ///
    /// # Panics
    ///
    /// Panics if the reference exceeds 56 bits, a delta exceeds its
    /// capacity (6 bits, or 10 bits inside the expanded delta-group), or
    /// `expanded` is not in `0..4`.
    #[must_use]
    pub fn pack(&self) -> [u8; 64] {
        assert!(
            self.reference < 1u64 << REF_BITS,
            "reference exceeds 56 bits"
        );
        if let Some(g) = self.expanded {
            assert!(g < DUAL_GROUPS, "expanded group out of range");
        }
        let mut block = [0u8; 64];
        write_bits(&mut block, 0, REF_BITS, self.reference);
        write_bits(
            &mut block,
            DUAL_VALID_OFF,
            1,
            u64::from(self.expanded.is_some()),
        );
        write_bits(
            &mut block,
            DUAL_INDEX_OFF,
            2,
            self.expanded.unwrap_or(0) as u64,
        );
        for (i, &d) in self.deltas.iter().enumerate() {
            let dg = i / DUAL_BLOCKS_PER_DG;
            if self.expanded == Some(dg) {
                assert!(
                    d < 1u64 << (DUAL_BASE_BITS + DUAL_EXTRA_BITS),
                    "delta {i} exceeds 10 bits"
                );
                write_bits(
                    &mut block,
                    DUAL_BASE_OFF + DUAL_BASE_BITS * i as u32,
                    DUAL_BASE_BITS,
                    d & ((1 << DUAL_BASE_BITS) - 1),
                );
                write_bits(
                    &mut block,
                    DUAL_EXT_OFF + DUAL_EXTRA_BITS * (i % DUAL_BLOCKS_PER_DG) as u32,
                    DUAL_EXTRA_BITS,
                    d >> DUAL_BASE_BITS,
                );
            } else {
                assert!(d < 1u64 << DUAL_BASE_BITS, "delta {i} exceeds 6 bits");
                write_bits(
                    &mut block,
                    DUAL_BASE_OFF + DUAL_BASE_BITS * i as u32,
                    DUAL_BASE_BITS,
                    d,
                );
            }
        }
        block
    }

    /// Unpacks a metadata block into its reference, deltas and expansion
    /// state.
    #[must_use]
    pub fn unpack(block: &[u8; 64]) -> Self {
        let reference = read_bits(block, 0, REF_BITS);
        let valid = read_bits(block, DUAL_VALID_OFF, 1) == 1;
        let index = read_bits(block, DUAL_INDEX_OFF, 2) as usize;
        let expanded = valid.then_some(index);
        let mut deltas = [0u64; GROUP_BLOCKS];
        for (i, d) in deltas.iter_mut().enumerate() {
            *d = read_bits(
                block,
                DUAL_BASE_OFF + DUAL_BASE_BITS * i as u32,
                DUAL_BASE_BITS,
            );
            if expanded == Some(i / DUAL_BLOCKS_PER_DG) {
                let ext = read_bits(
                    block,
                    DUAL_EXT_OFF + DUAL_EXTRA_BITS * (i % DUAL_BLOCKS_PER_DG) as u32,
                    DUAL_EXTRA_BITS,
                );
                *d |= ext << DUAL_BASE_BITS;
            }
        }
        Self {
            reference,
            deltas,
            expanded,
        }
    }

    /// The Decode Unit operation for the dual layout: concatenate the base
    /// delta with its overflow bits (or zeros) and add the reference.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 64`.
    #[must_use]
    pub fn decode_counter(block: &[u8; 64], index: usize) -> u64 {
        assert!(index < GROUP_BLOCKS, "block index out of group");
        let reference = read_bits(block, 0, REF_BITS);
        let mut delta = read_bits(
            block,
            DUAL_BASE_OFF + DUAL_BASE_BITS * index as u32,
            DUAL_BASE_BITS,
        );
        let valid = read_bits(block, DUAL_VALID_OFF, 1) == 1;
        let expanded = read_bits(block, DUAL_INDEX_OFF, 2) as usize;
        if valid && expanded == index / DUAL_BLOCKS_PER_DG {
            let ext = read_bits(
                block,
                DUAL_EXT_OFF + DUAL_EXTRA_BITS * (index % DUAL_BLOCKS_PER_DG) as u32,
                DUAL_EXTRA_BITS,
            );
            delta |= ext << DUAL_BASE_BITS;
        }
        reference + delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_io_roundtrip() {
        let mut block = [0u8; 64];
        write_bits(&mut block, 3, 13, 0x1abc & 0x1fff);
        assert_eq!(read_bits(&block, 3, 13), 0x1abc & 0x1fff);
        // Neighbouring bits untouched.
        assert_eq!(read_bits(&block, 0, 3), 0);
        write_bits(&mut block, 3, 13, 0);
        assert_eq!(block, [0u8; 64]);
    }

    #[test]
    fn flat_roundtrip() {
        let mut deltas = [0u64; 64];
        for (i, d) in deltas.iter_mut().enumerate() {
            *d = (i as u64 * 37) % 128;
        }
        let grp = FlatGroup {
            reference: 0x00ab_cdef_0123_4567 & ((1 << 56) - 1),
            deltas,
        };
        let packed = grp.pack();
        assert_eq!(FlatGroup::unpack(&packed), grp);
    }

    #[test]
    fn flat_decode_matches_unpack() {
        let mut deltas = [0u64; 64];
        deltas[0] = 127;
        deltas[63] = 1;
        deltas[17] = 99;
        let grp = FlatGroup {
            reference: 1000,
            deltas,
        };
        let packed = grp.pack();
        for (i, &d) in deltas.iter().enumerate() {
            assert_eq!(FlatGroup::decode_counter(&packed, i), 1000 + d);
        }
    }

    #[test]
    #[should_panic(expected = "exceeds 7 bits")]
    fn flat_rejects_wide_delta() {
        let mut deltas = [0u64; 64];
        deltas[5] = 128;
        let _ = FlatGroup {
            reference: 0,
            deltas,
        }
        .pack();
    }

    #[test]
    fn flat_layout_fits_512_bits() {
        let used = REF_BITS + FLAT_DELTA_BITS * 64;
        assert_eq!(used, 504);
    }

    #[test]
    fn dual_layout_fits_512_bits() {
        assert_eq!(DualGroup::USED_BITS, 507);
    }

    #[test]
    fn dual_roundtrip_no_expansion() {
        let mut deltas = [0u64; 64];
        for (i, d) in deltas.iter_mut().enumerate() {
            *d = (i as u64 * 11) % 64;
        }
        let grp = DualGroup {
            reference: 42,
            deltas,
            expanded: None,
        };
        assert_eq!(DualGroup::unpack(&grp.pack()), grp);
    }

    #[test]
    fn dual_roundtrip_with_expansion() {
        let mut deltas = [0u64; 64];
        for (i, d) in deltas.iter_mut().enumerate() {
            *d = (i as u64 * 7) % 64;
        }
        // Delta-group 2 (blocks 32..48) holds wide deltas.
        for d in deltas.iter_mut().skip(32).take(16) {
            *d += 512;
        }
        let grp = DualGroup {
            reference: 123_456,
            deltas,
            expanded: Some(2),
        };
        let packed = grp.pack();
        assert_eq!(DualGroup::unpack(&packed), grp);
        for (i, &d) in deltas.iter().enumerate() {
            assert_eq!(
                DualGroup::decode_counter(&packed, i),
                123_456 + d,
                "block {i}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "exceeds 6 bits")]
    fn dual_rejects_wide_delta_outside_expanded_group() {
        let mut deltas = [0u64; 64];
        deltas[0] = 64; // delta-group 0, but group 1 is expanded
        let _ = DualGroup {
            reference: 0,
            deltas,
            expanded: Some(1),
        }
        .pack();
    }

    #[test]
    #[should_panic(expected = "exceeds 10 bits")]
    fn dual_rejects_delta_beyond_expanded_capacity() {
        let mut deltas = [0u64; 64];
        deltas[0] = 1024;
        let _ = DualGroup {
            reference: 0,
            deltas,
            expanded: Some(0),
        }
        .pack();
    }

    #[test]
    fn decode_latency_constant_matches_paper() {
        assert_eq!(DECODE_LATENCY_CYCLES, 2);
    }
}
