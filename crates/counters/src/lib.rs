//! Per-block encryption-counter schemes (the heart of Section 4 of the
//! paper).
//!
//! Counter-mode memory encryption needs a monotonically increasing write
//! counter per 64-byte block. How those counters are *stored* determines
//! both the metadata footprint and how often whole block-groups must be
//! re-encrypted:
//!
//! * [`monolithic::MonolithicCounters`] — a full 56-bit counter per block
//!   (the SGX baseline): ~11% storage overhead, never re-encrypts.
//! * [`split::SplitCounters`] — Yan et al.'s split counters: a shared
//!   64-bit major counter per block-group plus a 7-bit minor per block.
//!   Compact, but every minor overflow forces a group re-encryption.
//! * [`delta::DeltaCounters`] — the paper's frame-of-reference delta
//!   encoding: a 56-bit reference per group plus a small delta per block,
//!   with two overflow-avoidance tricks — *delta reset* (Figure 5b) and
//!   *re-encoding by minimum subtraction* (Figure 5c).
//! * [`dual::DualLengthDeltaCounters`] — the constrained variable-length
//!   variant (Figure 6): 6-bit deltas in four delta-groups, with 72 shared
//!   overflow bits that can widen exactly one group's deltas by 4 bits.
//!
//! All schemes implement [`CounterScheme`], so the encryption engine and
//! the Table 2 experiment swap them freely.
//!
//! # Example
//!
//! ```
//! use ame_counters::{CounterScheme, delta::DeltaCounters};
//!
//! let mut ctrs = DeltaCounters::default();
//! assert_eq!(ctrs.counter(17), 0);
//! ctrs.record_write(17);
//! assert_eq!(ctrs.counter(17), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod delta;
pub mod dual;
pub mod monolithic;
pub mod packing;
pub mod split;
pub mod storage;

use std::fmt;
use std::io;

/// Shared framing for serialized counter-scheme state: one checksummed
/// section whose payload starts with the scheme name, so thawing with
/// the wrong scheme configured fails loudly instead of misparsing.
pub(crate) mod codec {
    use super::CounterStats;
    use ame_persist::{invalid_data, put_u64, read_section, write_section, ByteReader};
    use std::io;

    pub(crate) const MAGIC: &[u8; 8] = b"AMECTRS\0";
    pub(crate) const VERSION: u32 = 1;

    pub(crate) fn write_state(out: &mut Vec<u8>, name: &str, body: &[u8]) {
        let mut payload = Vec::with_capacity(1 + name.len() + body.len());
        payload.push(name.len() as u8);
        payload.extend_from_slice(name.as_bytes());
        payload.extend_from_slice(body);
        write_section(out, MAGIC, VERSION, &payload);
    }

    pub(crate) fn read_state<'a>(r: &mut ByteReader<'a>, name: &str) -> io::Result<ByteReader<'a>> {
        let (version, mut payload) = read_section(r, MAGIC)?;
        if version != VERSION {
            return Err(invalid_data(format!(
                "unsupported counter state version {version}"
            )));
        }
        let n = payload.u8()? as usize;
        let found = payload.take(n)?;
        if found != name.as_bytes() {
            return Err(invalid_data(format!(
                "counter scheme mismatch: state is '{}', configured '{name}'",
                String::from_utf8_lossy(found)
            )));
        }
        Ok(payload)
    }

    pub(crate) fn put_stats(out: &mut Vec<u8>, stats: &CounterStats) {
        put_u64(out, stats.writes);
        put_u64(out, stats.resets);
        put_u64(out, stats.reencodes);
        put_u64(out, stats.expansions);
        put_u64(out, stats.reencryptions);
    }

    pub(crate) fn read_stats(r: &mut ByteReader<'_>) -> io::Result<CounterStats> {
        Ok(CounterStats {
            writes: r.u64()?,
            resets: r.u64()?,
            reencodes: r.u64()?,
            expansions: r.u64()?,
            reencryptions: r.u64()?,
        })
    }
}

/// What a counter increment did to the block-group holding the counter.
///
/// The engine uses this to account for re-encryption traffic; `Reencrypted`
/// carries everything needed to re-encrypt the group's data blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WriteOutcome {
    /// The delta/counter was bumped in place; nothing else happened.
    Incremented,
    /// All deltas in the group had converged to one value and were folded
    /// into the reference (Figure 5b). Counter *values* are unchanged — no
    /// re-encryption.
    Reset,
    /// The group's deltas were re-encoded by subtracting the minimum delta
    /// (Figure 5c). Counter *values* are unchanged — no re-encryption.
    Reencoded,
    /// (Dual-length only.) The overflowing delta-group was widened using
    /// the reserved overflow bits (Figure 6). No re-encryption.
    Expanded,
    /// The whole block-group overflowed and must be re-encrypted with the
    /// new reference counter.
    Reencrypted {
        /// Index of the affected block-group.
        group: u64,
        /// Counter value of every block *before* the re-encryption, in
        /// block order within the group (needed to decrypt old contents).
        old_counters: Vec<u64>,
        /// The single fresh counter value now shared by every block in the
        /// group (the largest counter in the group, per Section 4.2).
        new_counter: u64,
    },
}

impl WriteOutcome {
    /// Returns `true` if this write forced a block-group re-encryption.
    #[must_use]
    pub fn is_reencryption(&self) -> bool {
        matches!(self, WriteOutcome::Reencrypted { .. })
    }
}

/// Running statistics for one counter scheme instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CounterStats {
    /// Total counter increments (block writes).
    pub writes: u64,
    /// Delta resets performed (Figure 5b).
    pub resets: u64,
    /// Re-encodings performed (Figure 5c).
    pub reencodes: u64,
    /// Delta-group expansions performed (dual-length only, Figure 6).
    pub expansions: u64,
    /// Block-group re-encryptions forced by counter overflow.
    pub reencryptions: u64,
}

impl CounterStats {
    /// Records an outcome into the statistics.
    pub fn record(&mut self, outcome: &WriteOutcome) {
        self.writes += 1;
        match outcome {
            WriteOutcome::Incremented => {}
            WriteOutcome::Reset => self.resets += 1,
            WriteOutcome::Reencoded => self.reencodes += 1,
            WriteOutcome::Expanded => self.expansions += 1,
            WriteOutcome::Reencrypted { .. } => self.reencryptions += 1,
        }
    }
}

impl fmt::Display for CounterStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "writes={} resets={} reencodes={} expansions={} reencryptions={}",
            self.writes, self.resets, self.reencodes, self.expansions, self.reencryptions
        )
    }
}

impl ame_telemetry::Metrics for CounterStats {
    fn record(&self, sink: &mut dyn ame_telemetry::MetricSink) {
        sink.counter("writes", self.writes);
        sink.counter("resets", self.resets);
        sink.counter("reencodes", self.reencodes);
        sink.counter("expansions", self.expansions);
        sink.counter("reencryptions", self.reencryptions);
    }
}

/// A per-block write-counter storage scheme.
///
/// Blocks are identified by a global block index (`physical address /
/// 64`). Groups are allocated lazily, so a scheme can stand in for an
/// arbitrarily large protected region.
pub trait CounterScheme: Send {
    /// Current counter value of `block` (zero if never written).
    fn counter(&self, block: u64) -> u64;

    /// Records a write to `block`: increments its counter, applying the
    /// scheme's overflow-avoidance machinery. Returns what happened.
    fn record_write(&mut self, block: u64) -> WriteOutcome;

    /// Counter storage cost in bits per 64-byte data block (amortized).
    fn bits_per_block(&self) -> f64;

    /// Number of data blocks sharing one counter group (1 for monolithic).
    fn blocks_per_group(&self) -> usize;

    /// Accumulated statistics.
    fn stats(&self) -> CounterStats;

    /// Short human-readable scheme name for experiment tables.
    fn name(&self) -> &'static str;

    /// Number of data blocks whose counters are packed into one 64-byte
    /// *metadata block* (the unit fetched from DRAM and authenticated by
    /// the integrity tree).
    fn blocks_per_metadata_block(&self) -> usize;

    /// The packed 64-byte image of metadata block `meta_block` (counters
    /// for data blocks `meta_block * blocks_per_metadata_block ..`).
    /// This is exactly what sits in off-chip counter storage.
    fn metadata_block_image(&self, meta_block: u64) -> [u8; 64];

    /// Metadata block index covering data block `block`.
    fn metadata_block_of(&self, block: u64) -> u64 {
        block / self.blocks_per_metadata_block() as u64
    }

    /// Serializes the scheme's complete internal state (configuration,
    /// statistics, every lazily allocated group) into a checksummed
    /// section appended to `out`.
    fn encode_state(&self, out: &mut Vec<u8>);

    /// Restores state captured by [`CounterScheme::encode_state`],
    /// replacing this instance's state (including its configuration) and
    /// advancing the reader past the section.
    ///
    /// # Errors
    ///
    /// `InvalidData` on a framing/checksum failure, a scheme-name
    /// mismatch, or internally inconsistent decoded state.
    fn decode_state(&mut self, r: &mut ame_persist::ByteReader<'_>) -> io::Result<()>;

    /// Forces `block`'s counter to `value` (write-intent log replay).
    ///
    /// Counter *values* are restored exactly; the representation (e.g. a
    /// delta group's reference) is re-derived canonically, which is sound
    /// because data MACs bind counter values, not their encoding. Because
    /// the log rotates into a snapshot at every group re-encryption, any
    /// value a log records was representable alongside its group when it
    /// was written — so a representability failure here is evidence of a
    /// corrupt or forged log.
    ///
    /// # Errors
    ///
    /// `InvalidData` if `value` cannot be represented in the group's
    /// current state.
    fn force_counter(&mut self, block: u64, value: u64) -> io::Result<()>;
}

/// Divides a global block index into (group index, index within group).
#[must_use]
pub fn split_block(block: u64, blocks_per_group: usize) -> (u64, usize) {
    let bpg = blocks_per_group as u64;
    (block / bpg, (block % bpg) as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_record_all_variants() {
        let mut s = CounterStats::default();
        s.record(&WriteOutcome::Incremented);
        s.record(&WriteOutcome::Reset);
        s.record(&WriteOutcome::Reencoded);
        s.record(&WriteOutcome::Expanded);
        s.record(&WriteOutcome::Reencrypted {
            group: 0,
            old_counters: vec![],
            new_counter: 1,
        });
        assert_eq!(s.writes, 5);
        assert_eq!(s.resets, 1);
        assert_eq!(s.reencodes, 1);
        assert_eq!(s.expansions, 1);
        assert_eq!(s.reencryptions, 1);
    }

    #[test]
    fn split_block_math() {
        assert_eq!(split_block(0, 64), (0, 0));
        assert_eq!(split_block(63, 64), (0, 63));
        assert_eq!(split_block(64, 64), (1, 0));
        assert_eq!(split_block(130, 64), (2, 2));
    }

    #[test]
    fn display_stats() {
        let s = CounterStats {
            writes: 3,
            ..Default::default()
        };
        assert!(s.to_string().contains("writes=3"));
    }
}
