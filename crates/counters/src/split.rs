//! Split counters (Yan et al., ISCA 2006) — the prior compact scheme the
//! paper compares against in Table 2.
//!
//! Each block-group shares a 64-bit *major* counter `M`; each block keeps a
//! small *minor* counter `m` (typically 7 bits). A block's full counter is
//! the concatenation `M || m`. When any minor counter overflows, the whole
//! group is re-encrypted under `M + 1` and all minors reset to zero.
//!
//! Unlike delta encoding, the minor counters are positional digits rather
//! than offsets, so neither the *reset* nor the *re-encode* optimization is
//! applicable — that structural difference is exactly what Table 2
//! measures.

use crate::{codec, split_block, CounterScheme, CounterStats, WriteOutcome};
use ame_persist::{invalid_data, put_u32, put_u64, ByteReader};
use std::collections::HashMap;
use std::io;

/// Per-group split-counter state.
#[derive(Debug, Clone)]
struct Group {
    major: u64,
    minors: Vec<u64>,
}

/// Split-counter scheme: shared major counter + per-block minor counters.
///
/// # Example
///
/// ```
/// use ame_counters::{CounterScheme, split::SplitCounters};
///
/// let mut ctrs = SplitCounters::default(); // 7-bit minors, 64-block groups
/// for _ in 0..128 {
///     ctrs.record_write(0);
/// }
/// // The 128th write overflows the 7-bit minor: group re-encrypted.
/// assert_eq!(ctrs.stats().reencryptions, 1);
/// ```
#[derive(Debug, Clone)]
pub struct SplitCounters {
    groups: HashMap<u64, Group>,
    minor_bits: u32,
    blocks_per_group: usize,
    stats: CounterStats,
}

impl SplitCounters {
    /// Creates a split-counter scheme.
    ///
    /// # Panics
    ///
    /// Panics if `minor_bits` is 0 or >= 32, or `blocks_per_group` is 0.
    #[must_use]
    pub fn new(minor_bits: u32, blocks_per_group: usize) -> Self {
        assert!(
            minor_bits > 0 && minor_bits < 32,
            "minor width must be 1..32 bits"
        );
        assert!(blocks_per_group > 0, "group must hold at least one block");
        Self {
            groups: HashMap::new(),
            minor_bits,
            blocks_per_group,
            stats: CounterStats::default(),
        }
    }

    fn minor_max(&self) -> u64 {
        (1u64 << self.minor_bits) - 1
    }

    fn full_counter(&self, major: u64, minor: u64) -> u64 {
        (major << self.minor_bits) | minor
    }
}

impl Default for SplitCounters {
    /// The configuration evaluated in the paper: 7-bit minors, 4 KB
    /// (64-block) groups.
    fn default() -> Self {
        Self::new(7, 64)
    }
}

impl CounterScheme for SplitCounters {
    fn counter(&self, block: u64) -> u64 {
        let (g, i) = split_block(block, self.blocks_per_group);
        match self.groups.get(&g) {
            Some(grp) => self.full_counter(grp.major, grp.minors[i]),
            None => 0,
        }
    }

    fn record_write(&mut self, block: u64) -> WriteOutcome {
        let (g, i) = split_block(block, self.blocks_per_group);
        let bpg = self.blocks_per_group;
        let minor_max = self.minor_max();
        let minor_bits = self.minor_bits;
        let grp = self.groups.entry(g).or_insert_with(|| Group {
            major: 0,
            minors: vec![0; bpg],
        });

        let outcome = if grp.minors[i] == minor_max {
            // Minor overflow: re-encrypt the group under major + 1.
            let old_counters: Vec<u64> = grp
                .minors
                .iter()
                .map(|&m| (grp.major << minor_bits) | m)
                .collect();
            grp.major += 1;
            grp.minors.iter_mut().for_each(|m| *m = 0);
            let new_counter = grp.major << minor_bits;
            WriteOutcome::Reencrypted {
                group: g,
                old_counters,
                new_counter,
            }
        } else {
            grp.minors[i] += 1;
            WriteOutcome::Incremented
        };
        self.stats.record(&outcome);
        outcome
    }

    fn bits_per_block(&self) -> f64 {
        f64::from(self.minor_bits) + 64.0 / self.blocks_per_group as f64
    }

    fn blocks_per_group(&self) -> usize {
        self.blocks_per_group
    }

    fn stats(&self) -> CounterStats {
        self.stats
    }

    fn name(&self) -> &'static str {
        "split"
    }

    fn blocks_per_metadata_block(&self) -> usize {
        self.blocks_per_group
    }

    /// Packs `major (64 bits) || minors (minor_bits each)` — exactly 512
    /// bits for the paper's 7-bit/64-block configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configured layout exceeds one 64-byte block.
    fn metadata_block_image(&self, meta_block: u64) -> [u8; 64] {
        let bits = 64 + self.minor_bits * self.blocks_per_group as u32;
        assert!(
            bits <= 512,
            "split-counter group does not fit one metadata block"
        );
        let mut image = [0u8; 64];
        let (major, minors) = match self.groups.get(&meta_block) {
            Some(grp) => (grp.major, grp.minors.clone()),
            None => (0, vec![0; self.blocks_per_group]),
        };
        crate::packing::write_bits(&mut image, 0, 64, major);
        for (i, &m) in minors.iter().enumerate() {
            crate::packing::write_bits(
                &mut image,
                64 + self.minor_bits * i as u32,
                self.minor_bits,
                m,
            );
        }
        image
    }

    fn encode_state(&self, out: &mut Vec<u8>) {
        let mut body = Vec::new();
        put_u32(&mut body, self.minor_bits);
        put_u64(&mut body, self.blocks_per_group as u64);
        codec::put_stats(&mut body, &self.stats);
        let mut indices: Vec<u64> = self.groups.keys().copied().collect();
        indices.sort_unstable();
        put_u64(&mut body, indices.len() as u64);
        for idx in indices {
            let grp = &self.groups[&idx];
            put_u64(&mut body, idx);
            put_u64(&mut body, grp.major);
            for &m in &grp.minors {
                put_u64(&mut body, m);
            }
        }
        codec::write_state(out, self.name(), &body);
    }

    fn decode_state(&mut self, r: &mut ByteReader<'_>) -> io::Result<()> {
        let mut body = codec::read_state(r, self.name())?;
        let minor_bits = body.u32()?;
        if minor_bits == 0 || minor_bits >= 32 {
            return Err(invalid_data("minor width out of range"));
        }
        let bpg = body.u64()? as usize;
        if bpg == 0 {
            return Err(invalid_data("empty split-counter group"));
        }
        let stats = codec::read_stats(&mut body)?;
        let count = body.u64()? as usize;
        let minor_max = (1u64 << minor_bits) - 1;
        let mut groups = HashMap::with_capacity(count.min(1 << 24));
        for _ in 0..count {
            let idx = body.u64()?;
            let major = body.u64()?;
            let mut minors = Vec::with_capacity(bpg);
            for _ in 0..bpg {
                let m = body.u64()?;
                if m > minor_max {
                    return Err(invalid_data("minor counter exceeds its width"));
                }
                minors.push(m);
            }
            groups.insert(idx, Group { major, minors });
        }
        self.minor_bits = minor_bits;
        self.blocks_per_group = bpg;
        self.stats = stats;
        self.groups = groups;
        Ok(())
    }

    /// Restores a counter *value*. The major counter only changes at a
    /// group re-encryption, and the write-intent log rotates into a
    /// snapshot whenever one happens, so every replayed value must carry
    /// the group's current major — anything else is a corrupt log.
    fn force_counter(&mut self, block: u64, value: u64) -> io::Result<()> {
        let (g, i) = split_block(block, self.blocks_per_group);
        let minor_max = self.minor_max();
        let major = value >> self.minor_bits;
        let minor = value & minor_max;
        match self.groups.entry(g) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                let grp = e.get_mut();
                if grp.major != major {
                    return Err(invalid_data(
                        "replayed split counter disagrees with group major",
                    ));
                }
                grp.minors[i] = minor;
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                if major != 0 {
                    return Err(invalid_data(
                        "replayed split counter implies an unrecorded re-encryption",
                    ));
                }
                let bpg = self.blocks_per_group;
                let grp = e.insert(Group {
                    major: 0,
                    minors: vec![0; bpg],
                });
                grp.minors[i] = minor;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_monotone_across_overflow() {
        let mut c = SplitCounters::new(3, 4); // minors overflow after 7 writes
        let mut last = 0;
        for _ in 0..40 {
            c.record_write(1);
            let now = c.counter(1);
            assert!(
                now > last,
                "counter must strictly increase ({last} -> {now})"
            );
            last = now;
        }
    }

    #[test]
    fn overflow_reencrypts_and_resets_group() {
        let mut c = SplitCounters::new(2, 4); // max minor = 3
        for _ in 0..3 {
            c.record_write(0);
        }
        c.record_write(1); // block 1 minor = 1
        let outcome = c.record_write(0); // block 0 overflows
        match outcome {
            WriteOutcome::Reencrypted {
                group,
                old_counters,
                new_counter,
            } => {
                assert_eq!(group, 0);
                assert_eq!(old_counters, vec![3, 1, 0, 0]);
                assert_eq!(new_counter, 1 << 2);
            }
            other => panic!("expected re-encryption, got {other:?}"),
        }
        // All blocks now share the new counter.
        for b in 0..4 {
            assert_eq!(c.counter(b), 1 << 2);
        }
    }

    #[test]
    fn no_reset_or_reencode_possible() {
        // Even perfectly uniform writes cause periodic re-encryptions: the
        // structural weakness delta encoding removes.
        let mut c = SplitCounters::new(2, 4);
        for _ in 0..4 {
            for b in 0..4 {
                c.record_write(b);
            }
        }
        assert_eq!(c.stats().resets, 0);
        assert_eq!(c.stats().reencodes, 0);
        assert!(c.stats().reencryptions > 0);
    }

    #[test]
    fn storage_cost_matches_paper() {
        // 7-bit minors + 64-bit major over 64 blocks = 8 bits/block:
        // the "8x smaller than 64-bit counters" claim of Section 2.2.
        let c = SplitCounters::default();
        assert_eq!(c.bits_per_block(), 8.0);
    }

    #[test]
    fn groups_are_independent() {
        let mut c = SplitCounters::new(2, 4);
        for _ in 0..4 {
            c.record_write(0); // group 0
        }
        assert_eq!(c.counter(4), 0, "group 1 untouched");
        assert_eq!(c.stats().reencryptions, 1);
    }

    #[test]
    fn state_roundtrip_and_force() {
        let mut c = SplitCounters::new(3, 4);
        for _ in 0..20 {
            c.record_write(1); // crosses one re-encryption
        }
        c.record_write(6);
        let mut buf = Vec::new();
        c.encode_state(&mut buf);
        let mut back = SplitCounters::default();
        back.decode_state(&mut ByteReader::new(&buf)).unwrap();
        assert_eq!(back.stats(), c.stats());
        for b in 0..8u64 {
            assert_eq!(back.counter(b), c.counter(b), "block {b}");
        }
        // Replay a value under the current major: fine.
        let next = c.counter(0) + 1;
        back.force_counter(0, next).unwrap();
        assert_eq!(back.counter(0), next);
        // A value implying a different major is a corrupt log.
        let foreign = back.counter(1) + (2 << 3);
        assert!(back.force_counter(1, foreign).is_err());
        // An untouched group accepts only major-zero values.
        back.force_counter(100, 5).unwrap();
        assert_eq!(back.counter(100), 5);
        assert!(back.force_counter(104, 1 << 7).is_err());
    }
}
