//! Dual-length delta encoding (Figure 6 of the paper).
//!
//! A constrained form of variable-length integer encoding designed for
//! 2-cycle hardware decode: the 64 deltas of a block-group are divided
//! into four **delta-groups** of 16. Each delta is 6 bits by default,
//! leaving 72 unused bits in the group's metadata block. When a delta
//! overflows its 6 bits, those reserve bits are assigned to its
//! delta-group, widening each of that group's deltas by 4 bits (to 10).
//! Only one delta-group can hold the reserve at a time; if a second group
//! overflows (or the widened group overflows again), the scheme falls back
//! to re-encode / re-encrypt.
//!
//! On facesim-like workloads several delta-groups grow concurrently, which
//! is why Table 2 shows dual-length doing *worse* than flat 7-bit deltas
//! there — this implementation reproduces that behaviour.

use crate::{codec, split_block, CounterScheme, CounterStats, WriteOutcome};
use ame_persist::{invalid_data, put_u32, put_u64, ByteReader};
use std::collections::HashMap;
use std::io;

/// Configuration of the dual-length delta scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DualLengthConfig {
    /// Default delta width in bits (paper: 6).
    pub base_bits: u32,
    /// Extra bits granted to the expanded delta-group (paper: 4).
    pub extra_bits: u32,
    /// Number of delta-groups per block-group (paper: 4).
    pub delta_groups: usize,
    /// Blocks per block-group (paper: 64 => 16 deltas per delta-group).
    pub blocks_per_group: usize,
    /// Width of the shared reference counter in bits.
    pub reference_bits: u32,
    /// Enables the convergence-reset optimization.
    pub reset_enabled: bool,
    /// Enables the min-subtraction re-encoding optimization.
    pub reencode_enabled: bool,
}

impl Default for DualLengthConfig {
    /// The paper's configuration: 6+4-bit deltas, 4 delta-groups of 16.
    fn default() -> Self {
        Self {
            base_bits: 6,
            extra_bits: 4,
            delta_groups: 4,
            blocks_per_group: 64,
            reference_bits: 56,
            reset_enabled: true,
            reencode_enabled: true,
        }
    }
}

impl DualLengthConfig {
    /// Largest delta representable at base width.
    #[must_use]
    pub fn base_max(&self) -> u64 {
        (1u64 << self.base_bits) - 1
    }

    /// Largest delta representable in the expanded delta-group.
    #[must_use]
    pub fn expanded_max(&self) -> u64 {
        (1u64 << (self.base_bits + self.extra_bits)) - 1
    }

    /// Blocks per delta-group.
    #[must_use]
    pub fn blocks_per_delta_group(&self) -> usize {
        self.blocks_per_group / self.delta_groups
    }

    fn validate(&self) {
        assert!(
            self.base_bits > 0 && self.base_bits < 32,
            "base width must be 1..32"
        );
        assert!(self.extra_bits > 0 && self.base_bits + self.extra_bits < 32);
        assert!(
            self.delta_groups > 0 && self.blocks_per_group.is_multiple_of(self.delta_groups),
            "delta-groups must evenly divide the block-group"
        );
        assert!(self.reference_bits > 0 && self.reference_bits <= 64);
    }
}

#[derive(Debug, Clone)]
struct Group {
    reference: u64,
    deltas: Vec<u64>,
    /// Which delta-group currently holds the shared overflow bits.
    expanded: Option<usize>,
}

impl Group {
    fn counters(&self) -> Vec<u64> {
        self.deltas.iter().map(|d| self.reference + d).collect()
    }
}

/// Dual-length delta-encoded counters.
///
/// # Example
///
/// ```
/// use ame_counters::{CounterScheme, dual::DualLengthDeltaCounters};
///
/// let mut ctrs = DualLengthDeltaCounters::default();
/// // 64 writes to one block overflow its 6-bit delta; the overflow bits
/// // absorb it with no re-encryption.
/// for _ in 0..70 {
///     ctrs.record_write(5);
/// }
/// assert_eq!(ctrs.stats().expansions, 1);
/// assert_eq!(ctrs.stats().reencryptions, 0);
/// assert_eq!(ctrs.counter(5), 70);
/// ```
#[derive(Debug, Clone)]
pub struct DualLengthDeltaCounters {
    groups: HashMap<u64, Group>,
    config: DualLengthConfig,
    stats: CounterStats,
}

impl DualLengthDeltaCounters {
    /// Creates a dual-length delta scheme from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (see
    /// [`DualLengthConfig`] field docs).
    #[must_use]
    pub fn new(config: DualLengthConfig) -> Self {
        config.validate();
        Self {
            groups: HashMap::new(),
            config,
            stats: CounterStats::default(),
        }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &DualLengthConfig {
        &self.config
    }

    /// The delta-group index of `block` within its block-group.
    #[must_use]
    pub fn delta_group_of(&self, block: u64) -> usize {
        let (_, i) = split_block(block, self.config.blocks_per_group);
        i / self.config.blocks_per_delta_group()
    }

    /// Which delta-group of `block`'s block-group holds the overflow bits.
    #[must_use]
    pub fn expanded_group(&self, block: u64) -> Option<usize> {
        let (g, _) = split_block(block, self.config.blocks_per_group);
        self.groups.get(&g).and_then(|grp| grp.expanded)
    }
}

impl Default for DualLengthDeltaCounters {
    fn default() -> Self {
        Self::new(DualLengthConfig::default())
    }
}

impl CounterScheme for DualLengthDeltaCounters {
    fn counter(&self, block: u64) -> u64 {
        let (g, i) = split_block(block, self.config.blocks_per_group);
        self.groups
            .get(&g)
            .map_or(0, |grp| grp.reference + grp.deltas[i])
    }

    fn record_write(&mut self, block: u64) -> WriteOutcome {
        let (g, i) = split_block(block, self.config.blocks_per_group);
        let cfg = self.config;
        let dg = i / cfg.blocks_per_delta_group();
        let grp = self.groups.entry(g).or_insert_with(|| Group {
            reference: 0,
            deltas: vec![0; cfg.blocks_per_group],
            expanded: None,
        });

        let cap = if grp.expanded == Some(dg) {
            cfg.expanded_max()
        } else {
            cfg.base_max()
        };
        let outcome = if grp.deltas[i] < cap {
            grp.deltas[i] += 1;
            let first = grp.deltas[0];
            if cfg.reset_enabled && first > 0 && grp.deltas.iter().all(|&d| d == first) {
                grp.reference += first;
                grp.deltas.iter_mut().for_each(|d| *d = 0);
                grp.expanded = None; // all deltas fit base width again
                WriteOutcome::Reset
            } else {
                WriteOutcome::Incremented
            }
        } else if grp.expanded.is_none() {
            // Assign the shared overflow bits to this delta-group.
            grp.expanded = Some(dg);
            grp.deltas[i] += 1;
            WriteOutcome::Expanded
        } else {
            // Overflow bits already taken (possibly by this very group at
            // its widened capacity): try re-encoding, then re-encrypt.
            let min = grp.deltas.iter().copied().min().unwrap_or(0);
            if cfg.reencode_enabled && min > 0 {
                grp.reference += min;
                grp.deltas.iter_mut().for_each(|d| *d -= min);
                grp.deltas[i] += 1;
                WriteOutcome::Reencoded
            } else {
                let old_counters = grp.counters();
                // Every block must jump strictly above its old counter;
                // with a widened group the largest delta may exceed the
                // overflowing one, so take the true maximum.
                let max_delta = grp.deltas.iter().copied().max().unwrap_or(0);
                let new_counter = grp.reference + max_delta + 1;
                grp.reference = new_counter;
                grp.deltas.iter_mut().for_each(|d| *d = 0);
                grp.expanded = None;
                WriteOutcome::Reencrypted {
                    group: g,
                    old_counters,
                    new_counter,
                }
            }
        };
        self.stats.record(&outcome);
        outcome
    }

    fn bits_per_block(&self) -> f64 {
        // Reference + base-width deltas + shared overflow bits + 2 group
        // index bits, amortized over the group (507 bits for the paper's
        // parameters — fits one 64-byte metadata block).
        let cfg = &self.config;
        let overflow_bits = cfg.blocks_per_delta_group() as f64 * f64::from(cfg.extra_bits);
        let index_bits = (cfg.delta_groups as f64).log2().ceil();
        f64::from(cfg.base_bits)
            + (f64::from(cfg.reference_bits) + overflow_bits + index_bits)
                / cfg.blocks_per_group as f64
    }

    fn blocks_per_group(&self) -> usize {
        self.config.blocks_per_group
    }

    fn stats(&self) -> CounterStats {
        self.stats
    }

    fn name(&self) -> &'static str {
        "dual-length delta"
    }

    fn blocks_per_metadata_block(&self) -> usize {
        self.config.blocks_per_group
    }

    /// Packs the Figure 6 layout: `reference || valid || group-index ||
    /// base deltas || overflow bits` — 507 bits for the paper's
    /// configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configured layout exceeds one 64-byte block.
    fn metadata_block_image(&self, meta_block: u64) -> [u8; 64] {
        let cfg = &self.config;
        let index_bits = (usize::BITS - (cfg.delta_groups - 1).leading_zeros()).max(1);
        let ext_slots = cfg.blocks_per_delta_group() as u32;
        let bits = cfg.reference_bits
            + 1
            + index_bits
            + cfg.base_bits * cfg.blocks_per_group as u32
            + cfg.extra_bits * ext_slots;
        assert!(
            bits <= 512,
            "dual-length group does not fit one metadata block"
        );

        let mut image = [0u8; 64];
        let (reference, deltas, expanded) = match self.groups.get(&meta_block) {
            Some(grp) => (grp.reference, grp.deltas.clone(), grp.expanded),
            None => (0, vec![0; cfg.blocks_per_group], None),
        };
        let mut off = 0;
        crate::packing::write_bits(&mut image, off, cfg.reference_bits, reference);
        off += cfg.reference_bits;
        crate::packing::write_bits(&mut image, off, 1, u64::from(expanded.is_some()));
        off += 1;
        crate::packing::write_bits(&mut image, off, index_bits, expanded.unwrap_or(0) as u64);
        off += index_bits;
        let base_off = off;
        let ext_off = base_off + cfg.base_bits * cfg.blocks_per_group as u32;
        for (i, &d) in deltas.iter().enumerate() {
            let dg = i / cfg.blocks_per_delta_group();
            crate::packing::write_bits(
                &mut image,
                base_off + cfg.base_bits * i as u32,
                cfg.base_bits,
                d & ((1 << cfg.base_bits) - 1),
            );
            if expanded == Some(dg) {
                crate::packing::write_bits(
                    &mut image,
                    ext_off + cfg.extra_bits * (i % cfg.blocks_per_delta_group()) as u32,
                    cfg.extra_bits,
                    d >> cfg.base_bits,
                );
            }
        }
        image
    }

    fn encode_state(&self, out: &mut Vec<u8>) {
        let cfg = &self.config;
        let mut body = Vec::new();
        put_u32(&mut body, cfg.base_bits);
        put_u32(&mut body, cfg.extra_bits);
        put_u64(&mut body, cfg.delta_groups as u64);
        put_u64(&mut body, cfg.blocks_per_group as u64);
        put_u32(&mut body, cfg.reference_bits);
        body.push(u8::from(cfg.reset_enabled));
        body.push(u8::from(cfg.reencode_enabled));
        codec::put_stats(&mut body, &self.stats);
        let mut indices: Vec<u64> = self.groups.keys().copied().collect();
        indices.sort_unstable();
        put_u64(&mut body, indices.len() as u64);
        for idx in indices {
            let grp = &self.groups[&idx];
            put_u64(&mut body, idx);
            put_u64(&mut body, grp.reference);
            match grp.expanded {
                Some(dg) => {
                    body.push(1);
                    put_u64(&mut body, dg as u64);
                }
                None => {
                    body.push(0);
                    put_u64(&mut body, 0);
                }
            }
            for &d in &grp.deltas {
                put_u64(&mut body, d);
            }
        }
        codec::write_state(out, self.name(), &body);
    }

    fn decode_state(&mut self, r: &mut ByteReader<'_>) -> io::Result<()> {
        let mut body = codec::read_state(r, self.name())?;
        let config = DualLengthConfig {
            base_bits: body.u32()?,
            extra_bits: body.u32()?,
            delta_groups: body.u64()? as usize,
            blocks_per_group: body.u64()? as usize,
            reference_bits: body.u32()?,
            reset_enabled: body.u8()? != 0,
            reencode_enabled: body.u8()? != 0,
        };
        let consistent = config.base_bits > 0
            && config.base_bits < 32
            && config.extra_bits > 0
            && config.base_bits + config.extra_bits < 32
            && config.delta_groups > 0
            && config.blocks_per_group > 0
            && config.blocks_per_group.is_multiple_of(config.delta_groups)
            && config.reference_bits > 0
            && config.reference_bits <= 64;
        if !consistent {
            return Err(invalid_data("inconsistent dual-length configuration"));
        }
        let stats = codec::read_stats(&mut body)?;
        let count = body.u64()? as usize;
        let mut groups = HashMap::with_capacity(count.min(1 << 24));
        for _ in 0..count {
            let idx = body.u64()?;
            let reference = body.u64()?;
            let has_expanded = body.u8()? != 0;
            let expanded_idx = body.u64()? as usize;
            let expanded = if has_expanded {
                if expanded_idx >= config.delta_groups {
                    return Err(invalid_data("expanded delta-group out of range"));
                }
                Some(expanded_idx)
            } else {
                None
            };
            let mut deltas = Vec::with_capacity(config.blocks_per_group);
            for i in 0..config.blocks_per_group {
                let d = body.u64()?;
                let cap = if expanded == Some(i / config.blocks_per_delta_group()) {
                    config.expanded_max()
                } else {
                    config.base_max()
                };
                if d > cap {
                    return Err(invalid_data("delta exceeds its width"));
                }
                deltas.push(d);
            }
            groups.insert(
                idx,
                Group {
                    reference,
                    deltas,
                    expanded,
                },
            );
        }
        self.config = config;
        self.stats = stats;
        self.groups = groups;
        Ok(())
    }

    /// Restores a counter *value* by re-deriving the group encoding: the
    /// reference becomes the group's minimum counter, and the shared
    /// overflow bits are re-assigned to whichever single delta-group needs
    /// widening afterwards. Two delta-groups needing the bits at once (or
    /// a delta beyond even the widened cap) is unrepresentable — evidence
    /// of a corrupt log, since the log rotates into a snapshot at every
    /// re-encryption.
    fn force_counter(&mut self, block: u64, value: u64) -> io::Result<()> {
        let (g, i) = split_block(block, self.config.blocks_per_group);
        let cfg = self.config;
        let grp = self.groups.entry(g).or_insert_with(|| Group {
            reference: 0,
            deltas: vec![0; cfg.blocks_per_group],
            expanded: None,
        });
        let mut counters = grp.counters();
        counters[i] = value;
        let min = counters.iter().copied().min().expect("non-empty group");
        let bpdg = cfg.blocks_per_delta_group();
        let mut need: Vec<usize> = Vec::new();
        for (j, &c) in counters.iter().enumerate() {
            let d = c - min;
            if d > cfg.expanded_max() {
                return Err(invalid_data(
                    "replayed counter not representable in its delta group",
                ));
            }
            if d > cfg.base_max() && !need.contains(&(j / bpdg)) {
                need.push(j / bpdg);
            }
        }
        if need.len() > 1 {
            return Err(invalid_data(
                "replayed counter needs overflow bits in two delta-groups",
            ));
        }
        grp.reference = min;
        for (d, c) in grp.deltas.iter_mut().zip(&counters) {
            *d = c - min;
        }
        grp.expanded = need.first().copied();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> DualLengthDeltaCounters {
        DualLengthDeltaCounters::new(DualLengthConfig {
            base_bits: 2,  // base max 3
            extra_bits: 2, // expanded max 15
            delta_groups: 2,
            blocks_per_group: 4, // delta-groups {0,1} and {2,3}
            reference_bits: 56,
            reset_enabled: true,
            reencode_enabled: true,
        })
    }

    #[test]
    fn expansion_absorbs_first_overflow() {
        let mut c = tiny();
        for _ in 0..3 {
            assert_eq!(c.record_write(0), WriteOutcome::Incremented);
        }
        assert_eq!(c.record_write(0), WriteOutcome::Expanded);
        assert_eq!(c.expanded_group(0), Some(0));
        assert_eq!(c.counter(0), 4);
        // The widened group keeps absorbing writes up to 15.
        for _ in 4..15 {
            assert_eq!(c.record_write(0), WriteOutcome::Incremented);
        }
        assert_eq!(c.counter(0), 15);
        assert_eq!(c.stats().reencryptions, 0);
    }

    #[test]
    fn second_group_overflow_forces_reencryption() {
        // The facesim failure mode: two delta-groups overflow; only one can
        // be extended.
        let mut c = tiny();
        for _ in 0..4 {
            c.record_write(0); // group 0 takes the overflow bits
        }
        for _ in 0..3 {
            c.record_write(2); // delta-group 1 fills its 2-bit delta
        }
        // Block 2 overflows; min delta is 0 (blocks 1 and 3 unwritten) so
        // re-encode fails too.
        let out = c.record_write(2);
        assert!(out.is_reencryption());
        match out {
            WriteOutcome::Reencrypted {
                old_counters,
                new_counter,
                ..
            } => {
                assert_eq!(old_counters, vec![4, 0, 3, 0]);
                // Largest delta (4, in the *expanded* group) rules.
                assert_eq!(new_counter, 5);
            }
            _ => unreachable!(),
        }
        assert_eq!(c.expanded_group(0), None, "overflow bits reclaimed");
    }

    #[test]
    fn reencode_rescues_second_overflow_when_min_positive() {
        let mut c = tiny();
        // Block 0 takes the overflow bits on its 4th write (base max 3).
        for _ in 0..4 {
            c.record_write(0);
        }
        assert_eq!(c.expanded_group(0), Some(0));
        // Every block gets a positive delta; block 2 reaches base max.
        c.record_write(1);
        c.record_write(3);
        for _ in 0..3 {
            c.record_write(2);
        }
        // deltas now: b0=4 (expanded cap 15), b1=1, b2=3 (base max), b3=1
        let before: Vec<u64> = (0..4).map(|b| c.counter(b)).collect();
        let out = c.record_write(2); // would overflow; min=1 > 0
        assert_eq!(out, WriteOutcome::Reencoded);
        assert_eq!(c.counter(2), before[2] + 1);
        assert_eq!(c.counter(0), before[0]);
        assert_eq!(c.stats().reencryptions, 0);
    }

    #[test]
    fn reset_reclaims_expansion() {
        let mut c = tiny();
        for _ in 0..4 {
            c.record_write(0); // 4th write takes the overflow bits
        }
        assert_eq!(c.expanded_group(0), Some(0));
        // Bring the rest of the group toward convergence. Block 2's fourth
        // write overflows its (unexpanded) delta-group but re-encodes.
        for _ in 0..4 {
            c.record_write(1);
        }
        for _ in 0..3 {
            c.record_write(3);
        }
        for _ in 0..4 {
            c.record_write(2);
        }
        assert_eq!(c.stats().reencodes, 1);
        // Final write converges all deltas -> reset reclaims the expansion.
        c.record_write(3);
        assert_eq!(c.expanded_group(0), None);
        assert!(c.stats().resets >= 1);
        assert_eq!(c.stats().reencryptions, 0);
        for b in 0..4 {
            assert_eq!(c.counter(b), 4);
        }
    }

    #[test]
    fn counters_strictly_increase() {
        let mut c = tiny();
        let mut last = [0u64; 4];
        // Skewed pattern exercising expansion, re-encode and re-encryption.
        let pattern = [0u64, 0, 1, 0, 2, 0, 0, 3, 0, 0, 0, 2];
        for round in 0..200 {
            let b = pattern[round % pattern.len()];
            c.record_write(b);
            for (o, l) in last.iter().enumerate() {
                assert!(c.counter(o as u64) >= *l, "round {round} block {o}");
            }
            assert!(c.counter(b) > last[b as usize]);
            for (o, l) in last.iter_mut().enumerate() {
                *l = c.counter(o as u64);
            }
        }
        assert!(
            c.stats().reencryptions > 0,
            "pattern should force re-encryptions"
        );
    }

    #[test]
    fn paper_storage_cost_fits_one_block() {
        // 56 + 64*6 + 64 + 2 = 506 bits <= 512: the Figure 6 layout fits a
        // 64-byte metadata block.
        let c = DualLengthDeltaCounters::default();
        let total_bits = c.bits_per_block() * 64.0;
        assert!(
            total_bits <= 512.0,
            "group metadata must fit one block, got {total_bits}"
        );
    }

    #[test]
    fn delta_group_mapping() {
        let c = DualLengthDeltaCounters::default();
        assert_eq!(c.delta_group_of(0), 0);
        assert_eq!(c.delta_group_of(15), 0);
        assert_eq!(c.delta_group_of(16), 1);
        assert_eq!(c.delta_group_of(63), 3);
        assert_eq!(c.delta_group_of(64), 0); // next block-group
    }

    #[test]
    fn metadata_image_matches_dual_packing() {
        use crate::packing::DualGroup;
        let mut c = DualLengthDeltaCounters::default();
        // Push block 3 past 6 bits so delta-group 0 expands.
        for _ in 0..70 {
            c.record_write(3);
        }
        for b in 20..30 {
            c.record_write(b);
        }
        assert_eq!(c.expanded_group(0), Some(0));
        let image = c.metadata_block_image(0);
        let unpacked = DualGroup::unpack(&image);
        assert_eq!(unpacked.expanded, Some(0));
        for b in 0..64u64 {
            assert_eq!(
                DualGroup::decode_counter(&image, b as usize),
                c.counter(b),
                "block {b}"
            );
        }
    }

    #[test]
    fn state_roundtrip_and_force() {
        let mut c = tiny();
        for _ in 0..4 {
            c.record_write(0); // 4th write expands delta-group 0
        }
        c.record_write(2);
        c.record_write(5); // second block-group
        assert_eq!(c.expanded_group(0), Some(0));
        let mut buf = Vec::new();
        c.encode_state(&mut buf);
        let mut back = DualLengthDeltaCounters::default();
        back.decode_state(&mut ByteReader::new(&buf)).unwrap();
        assert_eq!(back.config(), c.config(), "configuration is adopted");
        assert_eq!(back.stats(), c.stats());
        assert_eq!(back.expanded_group(0), Some(0));
        for b in 0..8u64 {
            assert_eq!(back.counter(b), c.counter(b), "block {b}");
        }
        // Forcing the next value for the expanded block stays expanded.
        let next = c.counter(0) + 1;
        back.force_counter(0, next).unwrap();
        assert_eq!(back.counter(0), next);
        assert_eq!(back.expanded_group(0), Some(0));
        // A value pushing a *second* delta-group past base width needs the
        // already-taken overflow bits: unrepresentable.
        assert!(back.force_counter(2, back.counter(0)).is_err());
        // Raising the laggards lets the encoding re-base; the expansion is
        // reclaimed once no delta exceeds base width.
        back.force_counter(2, 3).unwrap();
        back.force_counter(3, 3).unwrap();
        back.force_counter(1, 2).unwrap();
        assert_eq!(back.expanded_group(0), None);
        assert_eq!(back.counter(0), next, "values preserved across re-base");
        // Beyond even the widened cap is always an error.
        assert!(back.force_counter(0, next + 100).is_err());
    }

    #[test]
    #[should_panic(expected = "delta-groups must evenly divide")]
    fn invalid_config_panics() {
        let cfg = DualLengthConfig {
            delta_groups: 3,
            blocks_per_group: 64,
            ..Default::default()
        };
        let _ = DualLengthDeltaCounters::new(cfg);
    }
}
