//! The baseline: one full-width counter per 64-byte block (Intel SGX uses
//! 56-bit counters, incurring ~11% storage overhead — Section 2.1).

use crate::{codec, CounterScheme, CounterStats, WriteOutcome};
use ame_persist::{invalid_data, put_u32, put_u64, ByteReader};
use std::collections::HashMap;
use std::io;

/// Full-width per-block counters. Never re-encrypts: a 56-bit counter
/// would take millennia to overflow at realistic write rates.
///
/// # Example
///
/// ```
/// use ame_counters::{CounterScheme, monolithic::MonolithicCounters};
///
/// let mut ctrs = MonolithicCounters::new(56);
/// for _ in 0..1000 {
///     ctrs.record_write(3);
/// }
/// assert_eq!(ctrs.counter(3), 1000);
/// assert_eq!(ctrs.stats().reencryptions, 0);
/// ```
#[derive(Debug, Clone)]
pub struct MonolithicCounters {
    counters: HashMap<u64, u64>,
    bits: u32,
    stats: CounterStats,
}

impl MonolithicCounters {
    /// Creates a scheme with `bits`-wide counters (56 or 64 in practice).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero or greater than 64.
    #[must_use]
    pub fn new(bits: u32) -> Self {
        assert!(bits > 0 && bits <= 64, "counter width must be 1..=64 bits");
        Self {
            counters: HashMap::new(),
            bits,
            stats: CounterStats::default(),
        }
    }

    /// Width of each counter in bits.
    #[must_use]
    pub fn bits(&self) -> u32 {
        self.bits
    }

    fn max(&self) -> u64 {
        if self.bits == 64 {
            u64::MAX
        } else {
            (1u64 << self.bits) - 1
        }
    }
}

impl Default for MonolithicCounters {
    /// The SGX configuration: 56-bit counters.
    fn default() -> Self {
        Self::new(56)
    }
}

impl CounterScheme for MonolithicCounters {
    fn counter(&self, block: u64) -> u64 {
        self.counters.get(&block).copied().unwrap_or(0)
    }

    fn record_write(&mut self, block: u64) -> WriteOutcome {
        let max = self.max();
        let ctr = self.counters.entry(block).or_insert(0);
        let outcome = if *ctr == max {
            // A real machine would re-key; model it as a single-block
            // re-encryption. Unreachable in any realistic simulation.
            let old = *ctr;
            *ctr = 0;
            WriteOutcome::Reencrypted {
                group: block,
                old_counters: vec![old],
                new_counter: 0,
            }
        } else {
            *ctr += 1;
            WriteOutcome::Incremented
        };
        self.stats.record(&outcome);
        outcome
    }

    fn bits_per_block(&self) -> f64 {
        f64::from(self.bits)
    }

    fn blocks_per_group(&self) -> usize {
        1
    }

    fn stats(&self) -> CounterStats {
        self.stats
    }

    fn name(&self) -> &'static str {
        "monolithic"
    }

    fn blocks_per_metadata_block(&self) -> usize {
        // Eight 8-byte counter slots per 64-byte metadata block.
        8
    }

    fn metadata_block_image(&self, meta_block: u64) -> [u8; 64] {
        let mut image = [0u8; 64];
        for slot in 0..8u64 {
            let ctr = self.counter(meta_block * 8 + slot);
            image[(slot as usize) * 8..(slot as usize + 1) * 8].copy_from_slice(&ctr.to_le_bytes());
        }
        image
    }

    fn encode_state(&self, out: &mut Vec<u8>) {
        let mut body = Vec::with_capacity(4 + 40 + 8 + self.counters.len() * 16);
        put_u32(&mut body, self.bits);
        codec::put_stats(&mut body, &self.stats);
        let mut blocks: Vec<u64> = self.counters.keys().copied().collect();
        blocks.sort_unstable();
        put_u64(&mut body, blocks.len() as u64);
        for block in blocks {
            put_u64(&mut body, block);
            put_u64(&mut body, self.counters[&block]);
        }
        codec::write_state(out, self.name(), &body);
    }

    fn decode_state(&mut self, r: &mut ByteReader<'_>) -> io::Result<()> {
        let mut body = codec::read_state(r, self.name())?;
        let bits = body.u32()?;
        if bits == 0 || bits > 64 {
            return Err(invalid_data("counter width out of range"));
        }
        let stats = codec::read_stats(&mut body)?;
        let count = body.u64()? as usize;
        let mut counters = HashMap::with_capacity(count.min(1 << 24));
        let max = MonolithicCounters::new(bits).max();
        for _ in 0..count {
            let block = body.u64()?;
            let ctr = body.u64()?;
            if ctr > max {
                return Err(invalid_data("counter exceeds configured width"));
            }
            counters.insert(block, ctr);
        }
        self.bits = bits;
        self.stats = stats;
        self.counters = counters;
        Ok(())
    }

    fn force_counter(&mut self, block: u64, value: u64) -> io::Result<()> {
        if value > self.max() {
            return Err(invalid_data("replayed counter exceeds counter width"));
        }
        self.counters.insert(block, value);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_independently_per_block() {
        let mut c = MonolithicCounters::default();
        c.record_write(0);
        c.record_write(0);
        c.record_write(1);
        assert_eq!(c.counter(0), 2);
        assert_eq!(c.counter(1), 1);
        assert_eq!(c.counter(2), 0);
    }

    #[test]
    fn storage_cost() {
        assert_eq!(MonolithicCounters::new(56).bits_per_block(), 56.0);
        assert_eq!(MonolithicCounters::new(64).bits_per_block(), 64.0);
    }

    #[test]
    fn tiny_counter_wraps_with_reencryption() {
        let mut c = MonolithicCounters::new(2);
        for _ in 0..3 {
            assert_eq!(c.record_write(5), WriteOutcome::Incremented);
        }
        let outcome = c.record_write(5);
        assert!(outcome.is_reencryption());
        assert_eq!(c.counter(5), 0);
        assert_eq!(c.stats().reencryptions, 1);
    }

    #[test]
    #[should_panic(expected = "counter width")]
    fn zero_width_panics() {
        let _ = MonolithicCounters::new(0);
    }

    #[test]
    fn name_and_group() {
        let c = MonolithicCounters::default();
        assert_eq!(c.name(), "monolithic");
        assert_eq!(c.blocks_per_group(), 1);
    }

    #[test]
    fn state_roundtrip_and_force() {
        let mut c = MonolithicCounters::new(16);
        for b in 0..10u64 {
            for _ in 0..=b {
                c.record_write(b);
            }
        }
        let mut buf = Vec::new();
        c.encode_state(&mut buf);
        let mut back = MonolithicCounters::default();
        back.decode_state(&mut ByteReader::new(&buf)).unwrap();
        assert_eq!(back.bits(), 16);
        assert_eq!(back.stats(), c.stats());
        for b in 0..12u64 {
            assert_eq!(back.counter(b), c.counter(b));
        }
        back.force_counter(3, 777).unwrap();
        assert_eq!(back.counter(3), 777);
        assert!(back.force_counter(3, 1 << 20).is_err(), "exceeds 16 bits");
    }
}
