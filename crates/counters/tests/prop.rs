//! Property tests for the counter schemes: cross-checks between the
//! in-memory scheme state and the packed metadata images (what would
//! actually sit in DRAM), plus structural invariants.
//!
//! Driven by seeded `ame-prng` randomized loops (the workspace builds
//! offline, so there is no proptest); each test explores a few hundred
//! random cases deterministically.

use ame_counters::delta::DeltaCounters;
use ame_counters::dual::DualLengthDeltaCounters;
use ame_counters::monolithic::MonolithicCounters;
use ame_counters::packing::{DualGroup, FlatGroup};
use ame_counters::split::SplitCounters;
use ame_counters::CounterScheme;
use ame_prng::StdRng;

/// A random write stream over `blocks` block indices.
fn write_stream(rng: &mut StdRng, blocks: u64, max_len: usize) -> Vec<u64> {
    let len = rng.gen_range(1..max_len);
    (0..len).map(|_| rng.gen_range(0..blocks)).collect()
}

/// The packed image decoded by the hardware Decode Unit must agree
/// with the scheme's own counter values, through resets, re-encodes
/// and re-encryptions.
#[test]
fn delta_image_decodes_to_scheme_counters() {
    let mut rng = StdRng::seed_from_u64(0xC0_01);
    for _ in 0..128 {
        let writes = write_stream(&mut rng, 64, 600);
        let mut scheme = DeltaCounters::default();
        for &b in &writes {
            scheme.record_write(b);
        }
        let image = scheme.metadata_block_image(0);
        for b in 0..64u64 {
            assert_eq!(
                FlatGroup::decode_counter(&image, b as usize),
                scheme.counter(b),
                "block {b}"
            );
        }
    }
}

#[test]
fn dual_image_decodes_to_scheme_counters() {
    let mut rng = StdRng::seed_from_u64(0xC0_02);
    for _ in 0..128 {
        let writes = write_stream(&mut rng, 64, 600);
        let mut scheme = DualLengthDeltaCounters::default();
        for &b in &writes {
            scheme.record_write(b);
        }
        let image = scheme.metadata_block_image(0);
        for b in 0..64u64 {
            assert_eq!(
                DualGroup::decode_counter(&image, b as usize),
                scheme.counter(b),
                "block {b}"
            );
        }
    }
}

/// Monolithic counters are exact write counts (they never jump).
#[test]
fn monolithic_counts_exactly() {
    let mut rng = StdRng::seed_from_u64(0xC0_03);
    for _ in 0..128 {
        let writes = write_stream(&mut rng, 16, 300);
        let mut scheme = MonolithicCounters::default();
        let mut expected = [0u64; 16];
        for &b in &writes {
            scheme.record_write(b);
            expected[b as usize] += 1;
        }
        for b in 0..16u64 {
            assert_eq!(scheme.counter(b), expected[b as usize]);
        }
    }
}

/// Every compact scheme's counter is always >= the true write count
/// (representation changes may only skip counters forward, never
/// reuse one) — the nonce-freshness direction of safety.
#[test]
fn compact_counters_never_lag_write_counts() {
    let mut rng = StdRng::seed_from_u64(0xC0_04);
    for _ in 0..128 {
        let writes = write_stream(&mut rng, 8, 500);
        let mut split = SplitCounters::new(3, 8);
        let mut delta = DeltaCounters::default();
        let mut dual = DualLengthDeltaCounters::default();
        let mut expected = [0u64; 8];
        for &b in &writes {
            split.record_write(b);
            delta.record_write(b);
            dual.record_write(b);
            expected[b as usize] += 1;
        }
        for b in 0..8u64 {
            assert!(split.counter(b) >= expected[b as usize], "split block {b}");
            assert!(delta.counter(b) >= expected[b as usize], "delta block {b}");
            assert!(dual.counter(b) >= expected[b as usize], "dual block {b}");
        }
    }
}

/// Identical write streams must produce identical scheme state
/// (schemes are deterministic).
#[test]
fn schemes_are_deterministic() {
    let mut rng = StdRng::seed_from_u64(0xC0_05);
    for _ in 0..128 {
        let writes = write_stream(&mut rng, 64, 200);
        let mut a = DeltaCounters::default();
        let mut b = DeltaCounters::default();
        for &blk in &writes {
            assert_eq!(a.record_write(blk), b.record_write(blk));
        }
        assert_eq!(a.metadata_block_image(0), b.metadata_block_image(0));
        assert_eq!(a.stats(), b.stats());
    }
}

/// Split counters: every block of a group shares the same major
/// counter (that is what makes the scheme compact — and what forces
/// whole-group re-encryption on overflow).
#[test]
fn split_counters_share_one_major_per_group() {
    let mut rng = StdRng::seed_from_u64(0xC0_06);
    for _ in 0..128 {
        let writes = write_stream(&mut rng, 8, 400);
        let mut s = SplitCounters::new(3, 8);
        for &b in &writes {
            s.record_write(b);
        }
        let major = s.counter(0) >> 3;
        for b in 1..8u64 {
            assert_eq!(s.counter(b) >> 3, major, "block {b} major differs");
        }
    }
}
