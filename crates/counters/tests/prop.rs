//! Property tests for the counter schemes: cross-checks between the
//! in-memory scheme state and the packed metadata images (what would
//! actually sit in DRAM), plus structural invariants.

use ame_counters::delta::DeltaCounters;
use ame_counters::dual::DualLengthDeltaCounters;
use ame_counters::monolithic::MonolithicCounters;
use ame_counters::packing::{DualGroup, FlatGroup};
use ame_counters::split::SplitCounters;
use ame_counters::CounterScheme;
use proptest::prelude::*;

proptest! {
    /// The packed image decoded by the hardware Decode Unit must agree
    /// with the scheme's own counter values, through resets, re-encodes
    /// and re-encryptions.
    #[test]
    fn delta_image_decodes_to_scheme_counters(
        writes in proptest::collection::vec(0u64..64, 1..600),
    ) {
        let mut scheme = DeltaCounters::default();
        for &b in &writes {
            scheme.record_write(b);
        }
        let image = scheme.metadata_block_image(0);
        for b in 0..64u64 {
            prop_assert_eq!(
                FlatGroup::decode_counter(&image, b as usize),
                scheme.counter(b),
                "block {}", b
            );
        }
    }

    #[test]
    fn dual_image_decodes_to_scheme_counters(
        writes in proptest::collection::vec(0u64..64, 1..600),
    ) {
        let mut scheme = DualLengthDeltaCounters::default();
        for &b in &writes {
            scheme.record_write(b);
        }
        let image = scheme.metadata_block_image(0);
        for b in 0..64u64 {
            prop_assert_eq!(
                DualGroup::decode_counter(&image, b as usize),
                scheme.counter(b),
                "block {}", b
            );
        }
    }

    /// Monolithic counters are exact write counts (they never jump).
    #[test]
    fn monolithic_counts_exactly(writes in proptest::collection::vec(0u64..16, 1..300)) {
        let mut scheme = MonolithicCounters::default();
        let mut expected = [0u64; 16];
        for &b in &writes {
            scheme.record_write(b);
            expected[b as usize] += 1;
        }
        for b in 0..16u64 {
            prop_assert_eq!(scheme.counter(b), expected[b as usize]);
        }
    }

    /// Every compact scheme's counter is always >= the true write count
    /// (representation changes may only skip counters forward, never
    /// reuse one) — the nonce-freshness direction of safety.
    #[test]
    fn compact_counters_never_lag_write_counts(
        writes in proptest::collection::vec(0u64..8, 1..500),
    ) {
        let mut split = SplitCounters::new(3, 8);
        let mut delta = DeltaCounters::default();
        let mut dual = DualLengthDeltaCounters::default();
        let mut expected = [0u64; 8];
        for &b in &writes {
            split.record_write(b);
            delta.record_write(b);
            dual.record_write(b);
            expected[b as usize] += 1;
        }
        for b in 0..8u64 {
            prop_assert!(split.counter(b) >= expected[b as usize], "split block {}", b);
            prop_assert!(delta.counter(b) >= expected[b as usize], "delta block {}", b);
            prop_assert!(dual.counter(b) >= expected[b as usize], "dual block {}", b);
        }
    }

    /// Identical write streams must produce identical scheme state
    /// (schemes are deterministic).
    #[test]
    fn schemes_are_deterministic(writes in proptest::collection::vec(0u64..64, 1..200)) {
        let mut a = DeltaCounters::default();
        let mut b = DeltaCounters::default();
        for &blk in &writes {
            prop_assert_eq!(a.record_write(blk), b.record_write(blk));
        }
        prop_assert_eq!(a.metadata_block_image(0), b.metadata_block_image(0));
        prop_assert_eq!(a.stats(), b.stats());
    }

    /// Split counters: every block of a group shares the same major
    /// counter (that is what makes the scheme compact — and what forces
    /// whole-group re-encryption on overflow).
    #[test]
    fn split_counters_share_one_major_per_group(
        writes in proptest::collection::vec(0u64..8, 1..400),
    ) {
        let mut s = SplitCounters::new(3, 8);
        for &b in &writes {
            s.record_write(b);
        }
        let major = s.counter(0) >> 3;
        for b in 1..8u64 {
            prop_assert_eq!(s.counter(b) >> 3, major, "block {} major differs", b);
        }
    }
}
