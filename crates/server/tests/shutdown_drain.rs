//! Satellite: graceful shutdown drains every in-flight window — no
//! acked response is ever lost — closes connections with the typed
//! shutting-down code, and checkpoints the durable plane, so a reopened
//! store holds exactly what was acknowledged.

use ame_server::{ClientError, PipelinedClient, Server, ServerConfig, TenantSpec, WireError};
use ame_store::{SecureStore, StoreConfig, BLOCK_BYTES};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

fn temp_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "ame-server-drain-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn durable_config() -> StoreConfig {
    StoreConfig {
        shards: 2,
        shard_bytes: 64 * 1024,
        ..StoreConfig::default()
    }
}

#[test]
fn drain_loses_no_acked_write_and_checkpoints_durably() {
    let dir = temp_dir("acked");
    let mut spec = TenantSpec::new(0, durable_config());
    spec.persist_dir = Some(dir.clone());
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            tenants: vec![spec],
            poll_interval: Duration::from_millis(10),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr();

    // A closed-loop writer that hammers until the server drains it out:
    // it records the fill byte of every ACKED write per address, and
    // whether it observed the typed shutting-down signal.
    let writer = std::thread::spawn(move || {
        let mut client = PipelinedClient::connect(addr, 0, 8).unwrap();
        let mut acked: HashMap<u64, u8> = HashMap::new();
        let mut pending: HashMap<u64, (u64, u8)> = HashMap::new(); // req -> (addr, fill)
        let mut saw_shutdown = false;
        let mut round = 0u64;
        'out: loop {
            round += 1;
            for i in 0..8u64 {
                let addr = (i % 32) * 64;
                let fill = (round % 251) as u8;
                match client.submit_write(addr, &[fill; BLOCK_BYTES]) {
                    Ok(id) => {
                        pending.insert(id, (addr, fill));
                    }
                    Err(_) => break,
                }
            }
            while client.in_flight() > 0 {
                match client.recv() {
                    Ok((id, Ok(_))) => {
                        let (addr, fill) = pending.remove(&id).unwrap();
                        acked.insert(addr, fill);
                    }
                    Ok((_, Err(WireError::ShuttingDown))) => {
                        saw_shutdown = true;
                    }
                    Ok((_, Err(e))) => panic!("unexpected op error: {e}"),
                    Err(ClientError::Wire(WireError::ShuttingDown)) => {
                        saw_shutdown = true;
                        break 'out;
                    }
                    Err(ClientError::Io(_)) | Err(ClientError::Frame(_)) => break 'out,
                    Err(e) => panic!("unexpected client error: {e}"),
                }
            }
        }
        (acked, saw_shutdown)
    });

    // Let the writer build up traffic, then pull the plug mid-flight.
    std::thread::sleep(Duration::from_millis(300));
    let reports = server.shutdown();
    for (tenant, report) in &reports {
        assert!(
            report.all_resealed(),
            "tenant {tenant} did not reseal cleanly on drain"
        );
    }

    let (acked, saw_shutdown) = writer.join().unwrap();
    assert!(
        !acked.is_empty(),
        "the writer never got an ack — the test raced shutdown too early"
    );
    assert!(
        saw_shutdown,
        "the connection must end with the typed shutting-down code"
    );

    // Reopen the durable plane: every acked write must read back with
    // its last acknowledged value. (Responses are delivered in
    // completion order and same-address writes are same-shard FIFO, so
    // the last ack per address IS the last executed write.)
    let store = SecureStore::open(&dir, durable_config()).unwrap();
    for (&addr, &fill) in &acked {
        assert_eq!(
            store.read(addr).unwrap(),
            [fill; BLOCK_BYTES],
            "acked write at {addr:#x} lost on drain"
        );
    }
    let _ = store.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn connections_arriving_during_drain_are_refused_typed() {
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            tenants: vec![TenantSpec::new(0, durable_config())],
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr();
    let _ = server.shutdown();
    // After shutdown the listener is gone; a late client gets a refused
    // connection (or, if it raced the drain window, a typed notice).
    match PipelinedClient::connect(addr, 0, 4) {
        Err(ClientError::Io(_)) | Err(ClientError::Wire(WireError::ShuttingDown)) => {}
        Ok(_) => panic!("connected to a drained server"),
        Err(e) => panic!("unexpected error: {e}"),
    }
}
