//! Satellite: malformed and hostile frames are rejected per-connection
//! — typed codes where the stream is still coherent, a close where it
//! is not — and never disturb another tenant's live session. Every
//! scenario runs in **both** serving modes.

use ame_server::protocol::{
    self, code, op, read_frame, write_frame, DEFAULT_MAX_FRAME, PROTOCOL_VERSION,
};
use ame_server::{Client, Server, ServerConfig, ServerMode, TenantSpec};
use ame_store::{StoreConfig, BLOCK_BYTES};
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn small_store() -> StoreConfig {
    StoreConfig {
        shards: 2,
        shard_bytes: 64 * 1024,
        ..StoreConfig::default()
    }
}

fn two_tenant_server(mode: ServerMode) -> Server {
    Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            tenants: vec![
                TenantSpec::new(0, small_store()),
                TenantSpec::new(1, small_store()),
            ],
            mode,
            ..ServerConfig::default()
        },
    )
    .expect("bind")
}

/// Raw handshake as tenant 0, bypassing the client library so the test
/// can then speak garbage.
fn raw_hello(addr: std::net::SocketAddr) -> TcpStream {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut payload = Vec::new();
    payload.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
    payload.extend_from_slice(&0u32.to_le_bytes());
    payload.extend_from_slice(&64u32.to_le_bytes());
    write_frame(&mut stream, op::HELLO, 1, &payload).unwrap();
    let resp = read_frame(&mut stream, DEFAULT_MAX_FRAME).unwrap();
    assert_eq!(resp.tag, protocol::STATUS_OK, "hello refused");
    stream
}

/// The victim's health check: a full write/read sweep on tenant 1 must
/// succeed while tenant 0's connection is being hostile.
fn assert_other_tenant_healthy(server: &Server, fill: u8) {
    let mut bystander = Client::connect(server.addr(), 1).unwrap();
    for i in 0..16u64 {
        bystander.write(i * 64, &[fill; BLOCK_BYTES]).unwrap();
    }
    for i in 0..16u64 {
        assert_eq!(bystander.read(i * 64).unwrap(), [fill; BLOCK_BYTES]);
    }
    bystander.goodbye().unwrap();
}

#[test]
fn oversized_length_prefix_gets_bad_frame_and_close_reactor() {
    oversized_length_prefix_gets_bad_frame_and_close(ServerMode::reactor());
}

#[test]
fn oversized_length_prefix_gets_bad_frame_and_close_threaded() {
    oversized_length_prefix_gets_bad_frame_and_close(ServerMode::Threaded);
}

fn oversized_length_prefix_gets_bad_frame_and_close(mode: ServerMode) {
    let server = two_tenant_server(mode);
    let mut attacker = raw_hello(server.addr());

    // A 4 GiB length prefix: the server must answer BAD_FRAME without
    // ever trying to buffer 4 GiB, then drop the connection.
    attacker.write_all(&u32::MAX.to_le_bytes()).unwrap();
    attacker.write_all(&[0u8; 32]).unwrap();
    let resp = read_frame(&mut attacker, DEFAULT_MAX_FRAME).unwrap();
    assert_eq!(resp.tag, code::BAD_FRAME);
    // Connection is closed: the next read reaches EOF — or a reset, if
    // the server tore down while our garbage tail sat unread in its
    // receive buffer. Either way the transport is dead.
    let mut scratch = [0u8; 16];
    loop {
        match attacker.read(&mut scratch) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) if e.kind() == ErrorKind::ConnectionReset => break,
            Err(e) => panic!("expected close after BAD_FRAME, got {e}"),
        }
    }

    assert_other_tenant_healthy(&server, 0x11);
    let _ = server.shutdown();
}

#[test]
fn truncated_frame_closes_without_poisoning_the_server_reactor() {
    truncated_frame_closes_without_poisoning_the_server(ServerMode::reactor());
}

#[test]
fn truncated_frame_closes_without_poisoning_the_server_threaded() {
    truncated_frame_closes_without_poisoning_the_server(ServerMode::Threaded);
}

fn truncated_frame_closes_without_poisoning_the_server(mode: ServerMode) {
    let server = two_tenant_server(mode);
    let mut attacker = raw_hello(server.addr());

    // Claim 80 bytes, deliver 10, walk away: the server can never
    // complete the frame and must just drop the connection at EOF.
    attacker.write_all(&80u32.to_le_bytes()).unwrap();
    attacker.write_all(&[op::WRITE; 10]).unwrap();
    attacker.shutdown(std::net::Shutdown::Write).unwrap();
    let mut rest = Vec::new();
    let _ = attacker.read_to_end(&mut rest); // whatever arrives, then EOF

    assert_other_tenant_healthy(&server, 0x22);
    let _ = server.shutdown();
}

#[test]
fn unknown_opcode_is_typed_and_survivable_reactor() {
    unknown_opcode_is_typed_and_survivable(ServerMode::reactor());
}

#[test]
fn unknown_opcode_is_typed_and_survivable_threaded() {
    unknown_opcode_is_typed_and_survivable(ServerMode::Threaded);
}

fn unknown_opcode_is_typed_and_survivable(mode: ServerMode) {
    let server = two_tenant_server(mode);
    let mut attacker = raw_hello(server.addr());

    write_frame(&mut attacker, 0x7e, 9, &[1, 2, 3]).unwrap();
    let resp = read_frame(&mut attacker, DEFAULT_MAX_FRAME).unwrap();
    assert_eq!(resp.tag, code::UNKNOWN_OPCODE);
    assert_eq!(resp.req_id, 9);
    assert_eq!(resp.payload, vec![0x7e]);

    // The connection itself is still coherent: a valid write succeeds.
    let mut payload = Vec::new();
    payload.extend_from_slice(&0u64.to_le_bytes());
    payload.extend_from_slice(&[0x5a; BLOCK_BYTES]);
    write_frame(&mut attacker, op::WRITE, 10, &payload).unwrap();
    let resp = read_frame(&mut attacker, DEFAULT_MAX_FRAME).unwrap();
    assert_eq!((resp.tag, resp.req_id), (protocol::STATUS_OK, 10));

    assert_other_tenant_healthy(&server, 0x33);
    let _ = server.shutdown();
}

#[test]
fn replayed_request_id_within_window_is_rejected_reactor() {
    replayed_request_id_within_window_is_rejected(ServerMode::reactor());
}

#[test]
fn replayed_request_id_within_window_is_rejected_threaded() {
    replayed_request_id_within_window_is_rejected(ServerMode::Threaded);
}

fn replayed_request_id_within_window_is_rejected(mode: ServerMode) {
    let server = two_tenant_server(mode);
    let mut attacker = raw_hello(server.addr());

    // Pairs of back-to-back reads sharing a request id, written in one
    // burst so the duplicate lands while the original is in flight.
    // (If a completion slips in between a pair, that duplicate is
    // legitimately a fresh id — so the contract asserted is: every
    // response is OK or DUPLICATE_REQUEST_ID, and at least one
    // duplicate is caught across the burst.)
    const PAIRS: u64 = 16;
    let mut burst = Vec::new();
    for i in 0..PAIRS {
        let req_id = 100 + i;
        for _ in 0..2 {
            write_frame(&mut burst, op::READ, req_id, &0u64.to_le_bytes()).unwrap();
        }
    }
    attacker.write_all(&burst).unwrap();

    let mut ok = 0;
    let mut duplicates = 0;
    for _ in 0..2 * PAIRS {
        let resp = read_frame(&mut attacker, DEFAULT_MAX_FRAME).unwrap();
        match resp.tag {
            protocol::STATUS_OK => ok += 1,
            code::DUPLICATE_REQUEST_ID => duplicates += 1,
            other => panic!("unexpected status {other:#04x}"),
        }
    }
    assert_eq!(ok + duplicates, 2 * PAIRS);
    assert!(ok >= PAIRS, "originals must still complete");
    assert!(
        duplicates >= 1,
        "at least one replayed id must be caught in flight"
    );

    // Rejection did not corrupt the window bookkeeping: the ids are
    // reusable once their originals completed.
    write_frame(&mut attacker, op::READ, 100, &0u64.to_le_bytes()).unwrap();
    let resp = read_frame(&mut attacker, DEFAULT_MAX_FRAME).unwrap();
    assert_eq!((resp.tag, resp.req_id), (protocol::STATUS_OK, 100));

    assert_other_tenant_healthy(&server, 0x44);
    let _ = server.shutdown();
}

#[test]
fn send_without_reading_gets_bounded_backpressure_reactor() {
    send_without_reading_gets_bounded_backpressure(ServerMode::reactor());
}

#[test]
fn send_without_reading_gets_bounded_backpressure_threaded() {
    send_without_reading_gets_bounded_backpressure(ServerMode::Threaded);
}

/// A peer that streams response-earning frames while refusing to read
/// must be throttled by backpressure (bounded server memory), and every
/// buffered response must still arrive, in order, once it starts
/// reading again.
fn send_without_reading_gets_bounded_backpressure(mode: ServerMode) {
    const FRAMES: u64 = 200_000;
    let server = two_tenant_server(mode);
    let attacker = raw_hello(server.addr());

    // ~2.8 MiB of unknown-opcode frames in one burst — far past the
    // reactor's write-buffer stall threshold plus any kernel buffering,
    // so the server must stop reading (blocking this writer thread)
    // rather than queue ~2.8 MiB of rejections in memory.
    let mut burst = Vec::new();
    for i in 0..FRAMES {
        write_frame(&mut burst, 0x7e, i, &[]).unwrap();
    }
    let mut write_half = attacker.try_clone().unwrap();
    let writer = std::thread::spawn(move || write_half.write_all(&burst));

    // Let the pipeline wedge: server stalled on its full write buffer,
    // writer blocked on the closed TCP window.
    std::thread::sleep(Duration::from_millis(300));

    // Start draining: every frame gets its typed rejection, in order.
    let mut read_half = std::io::BufReader::new(attacker);
    for i in 0..FRAMES {
        let resp = read_frame(&mut read_half, DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(
            (resp.tag, resp.req_id),
            (code::UNKNOWN_OPCODE, i),
            "response {i} lost or reordered across the backpressure stall"
        );
    }
    writer
        .join()
        .expect("writer thread panicked")
        .expect("burst write failed");

    assert_other_tenant_healthy(&server, 0x66);
    let _ = server.shutdown();
}

#[test]
fn shutdown_is_not_hostage_to_a_peer_that_never_reads_reactor() {
    let server = two_tenant_server(ServerMode::reactor());
    let attacker = raw_hello(server.addr());

    // Keep streaming response-earning frames without ever reading, so
    // the connection sits wedged (full write buffer, closed TCP window)
    // when shutdown begins. The writer unblocks only when the server
    // force-closes the socket — which is exactly what the drain
    // deadline must do.
    let mut write_half = attacker.try_clone().unwrap();
    let writer = std::thread::spawn(move || {
        let mut chunk = Vec::new();
        for i in 0..10_000u64 {
            write_frame(&mut chunk, 0x7e, i, &[]).unwrap();
        }
        while write_half.write_all(&chunk).is_ok() {}
    });
    std::thread::sleep(Duration::from_millis(300));

    let start = std::time::Instant::now();
    let _ = server.shutdown();
    assert!(
        start.elapsed() < Duration::from_secs(30),
        "shutdown hung on an unread connection"
    );
    writer.join().expect("writer thread panicked");
    drop(attacker);
}

#[test]
fn operation_before_hello_is_refused_reactor() {
    operation_before_hello_is_refused(ServerMode::reactor());
}

#[test]
fn operation_before_hello_is_refused_threaded() {
    operation_before_hello_is_refused(ServerMode::Threaded);
}

fn operation_before_hello_is_refused(mode: ServerMode) {
    let server = two_tenant_server(mode);
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write_frame(&mut stream, op::READ, 1, &0u64.to_le_bytes()).unwrap();
    let resp = read_frame(&mut stream, DEFAULT_MAX_FRAME).unwrap();
    assert_eq!(resp.tag, code::BAD_FRAME);
    assert_other_tenant_healthy(&server, 0x55);
    let _ = server.shutdown();
}
