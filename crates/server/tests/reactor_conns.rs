//! Satellite: reactor-specific connection behaviour — partial frames
//! arriving a byte at a time (slow-loris), frames split across multiple
//! writes, and a horde of idle connections holding fds while one client
//! streams. These are exactly the shapes a per-connection-thread server
//! handles by burning a blocked thread; the reactor must handle them
//! with buffers alone.

use ame_server::protocol::{
    self, op, read_frame, write_frame, DEFAULT_MAX_FRAME, PROTOCOL_VERSION,
};
use ame_server::{PipelinedClient, Server, ServerConfig, ServerMode, TenantSpec};
use ame_store::{StoreConfig, BLOCK_BYTES};
use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

fn small_store() -> StoreConfig {
    StoreConfig {
        shards: 2,
        shard_bytes: 64 * 1024,
        ..StoreConfig::default()
    }
}

fn reactor_server(max_connections: usize) -> Server {
    let mut spec = TenantSpec::new(0, small_store());
    spec.max_connections = max_connections;
    Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            tenants: vec![spec],
            mode: ServerMode::reactor(),
            ..ServerConfig::default()
        },
    )
    .expect("bind")
}

fn hello_frame() -> Vec<u8> {
    let mut payload = Vec::new();
    payload.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
    payload.extend_from_slice(&0u32.to_le_bytes());
    payload.extend_from_slice(&4u32.to_le_bytes());
    let mut frame = Vec::new();
    write_frame(&mut frame, op::HELLO, 1, &payload).unwrap();
    frame
}

fn write_op_frame(req_id: u64, addr: u64, fill: u8) -> Vec<u8> {
    let mut payload = Vec::with_capacity(8 + BLOCK_BYTES);
    payload.extend_from_slice(&addr.to_le_bytes());
    payload.extend_from_slice(&[fill; BLOCK_BYTES]);
    let mut frame = Vec::new();
    write_frame(&mut frame, op::WRITE, req_id, &payload).unwrap();
    frame
}

/// A HELLO dribbled in one byte at a time must still complete the
/// handshake — a partial frame is a buffered state, not an error, and
/// it must not block the loop (a second, fast client gets served while
/// the loris dribbles).
#[test]
fn slow_loris_hello_completes_and_blocks_nobody() {
    let server = reactor_server(8);
    if server.mode_name() != "reactor" {
        eprintln!("host has no epoll; reactor fallback active, skipping");
        let _ = server.shutdown();
        return;
    }

    let mut loris = TcpStream::connect(server.addr()).unwrap();
    loris.set_nodelay(true).unwrap();
    loris
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let frame = hello_frame();
    let (head, tail) = frame.split_at(frame.len() - 1);
    for &byte in head {
        loris.write_all(&[byte]).unwrap();
        loris.flush().unwrap();
        std::thread::sleep(Duration::from_millis(1));
    }

    // Mid-dribble, a well-behaved client connects and does real work on
    // the same event loops.
    let mut fast = PipelinedClient::connect(server.addr(), 0, 4).unwrap();
    fast.submit_write(0, &[0xfa; BLOCK_BYTES]).unwrap();
    let acks = fast.drain().unwrap();
    assert!(acks.iter().all(|(_, r)| r.is_ok()));
    fast.goodbye().unwrap();

    // The last byte completes the loris's handshake.
    loris.write_all(tail).unwrap();
    let resp = read_frame(&mut loris, DEFAULT_MAX_FRAME).unwrap();
    assert_eq!((resp.tag, resp.req_id), (protocol::STATUS_OK, 1));

    let _ = server.shutdown();
}

/// One WRITE frame delivered in three separate writes (header split
/// mid-length-prefix, payload split mid-block) is reassembled exactly.
#[test]
fn frame_split_across_three_writes_is_reassembled() {
    let server = reactor_server(8);
    if server.mode_name() != "reactor" {
        eprintln!("host has no epoll; reactor fallback active, skipping");
        let _ = server.shutdown();
        return;
    }

    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(&hello_frame()).unwrap();
    let resp = read_frame(&mut stream, DEFAULT_MAX_FRAME).unwrap();
    assert_eq!(resp.tag, protocol::STATUS_OK, "hello refused");

    let frame = write_op_frame(2, 64, 0x3b);
    // Split points chosen to land inside the length prefix and inside
    // the block payload.
    for chunk in [&frame[..2], &frame[2..20], &frame[20..]] {
        stream.write_all(chunk).unwrap();
        stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(5));
    }
    let resp = read_frame(&mut stream, DEFAULT_MAX_FRAME).unwrap();
    assert_eq!((resp.tag, resp.req_id), (protocol::STATUS_OK, 2));

    // The write landed: read it back through a normal client.
    let mut reader = ame_server::Client::connect(server.addr(), 0).unwrap();
    assert_eq!(reader.read(64).unwrap(), [0x3b; BLOCK_BYTES]);
    reader.goodbye().unwrap();

    let _ = server.shutdown();
}

/// 500 granted-but-idle connections hold fds and sessions while one
/// client streams a full workload — and the server never grows beyond
/// its fixed reactor thread count. The threaded plane would need 1000
/// OS threads for the idle horde alone.
#[test]
fn idle_horde_holds_fds_while_one_client_streams() {
    const HORDE: usize = 500;
    let server = reactor_server(HORDE + 2);
    if server.mode_name() != "reactor" {
        eprintln!("host has no epoll; reactor fallback active, skipping");
        let _ = server.shutdown();
        return;
    }
    let fixed_threads = server.reactor_threads();
    assert!(fixed_threads >= 1);

    let mut horde = Vec::with_capacity(HORDE);
    for _ in 0..HORDE {
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.set_nodelay(true).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream.write_all(&hello_frame()).unwrap();
        let resp = read_frame(&mut stream, DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(resp.tag, protocol::STATUS_OK, "horde hello refused");
        horde.push(stream);
    }

    // With 500 sessions parked, one client pushes a real pipelined
    // workload through the same fixed thread pool.
    let mut streamer = PipelinedClient::connect(server.addr(), 0, 16).unwrap();
    let mut completed = 0usize;
    for i in 0..200u64 {
        let addr = (i % 64) * 64;
        let (_, reaped) = streamer
            .submit_write_wait(addr, &[(i % 251) as u8; BLOCK_BYTES])
            .unwrap();
        completed += reaped.iter().filter(|(_, r)| r.is_ok()).count();
        assert!(reaped.iter().all(|(_, r)| r.is_ok()));
    }
    let tail = streamer.drain().unwrap();
    assert!(tail.iter().all(|(_, r)| r.is_ok()));
    completed += tail.len();
    assert_eq!(completed, 200, "every streamed op must complete");
    streamer.goodbye().unwrap();

    assert_eq!(
        server.reactor_threads(),
        fixed_threads,
        "the pool must not grow with connections"
    );
    let snap = server.telemetry();
    assert!(snap.counter("server/connections_accepted").unwrap() >= (HORDE as u64) + 1);

    drop(horde);
    let _ = server.shutdown();
}
