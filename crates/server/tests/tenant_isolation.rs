//! Acceptance: tenants are isolated end to end. Tampering one tenant's
//! sealed memory — to the point of poisoning a shard — never fails
//! another tenant's requests, because each tenant is an independently
//! keyed store behind the same listener.

use ame_engine::ReadError;
use ame_server::{
    Client, ClientError, PipelinedClient, Server, ServerConfig, TenantSpec, WireError,
};
use ame_store::{StoreConfig, StoreError, BLOCK_BYTES};

fn small_store() -> StoreConfig {
    StoreConfig {
        shards: 2,
        shard_bytes: 64 * 1024,
        ..StoreConfig::default()
    }
}

#[test]
fn poisoning_one_tenant_never_fails_the_other() {
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            tenants: vec![
                TenantSpec::new(0, small_store()),
                TenantSpec::new(1, small_store()),
            ],
            ..ServerConfig::default()
        },
    )
    .unwrap();

    let mut victim = Client::connect(server.addr(), 0).unwrap();
    let mut bystander = Client::connect(server.addr(), 1).unwrap();

    // Both tenants hold data at the same addresses (their namespaces
    // overlap in *addresses* but never in keys).
    for i in 0..8u64 {
        victim.write(i * 64, &[0xa0; BLOCK_BYTES]).unwrap();
        bystander.write(i * 64, &[0xb1; BLOCK_BYTES]).unwrap();
    }

    // Attack tenant 0 over the wire: three flips across words defeat
    // the 2-flip correction budget, so the next read detects tampering
    // and quarantines the shard.
    for bit in [0u32, 70, 140] {
        victim.tamper_data_bit(0, bit).unwrap();
    }
    match victim.read(0) {
        Err(ClientError::Wire(WireError::Store(StoreError::ShardPoisoned { shard, cause }))) => {
            assert_eq!(shard, 0);
            assert!(
                matches!(
                    cause,
                    Some(ReadError::IntegrityViolation) | Some(ReadError::Tree(_))
                ),
                "first rejection carries the detecting cause, got {cause:?}"
            );
        }
        other => panic!("expected wire ShardPoisoned, got {other:?}"),
    }
    // The poison sticks for the victim's shard 0 (addr 0 -> shard 0).
    match victim.read(0) {
        Err(ClientError::Wire(WireError::Store(StoreError::ShardPoisoned { .. }))) => {}
        other => panic!("poison did not stick: {other:?}"),
    }
    // The victim's untampered shard still serves (address interleave:
    // addr 64 -> shard 1).
    assert_eq!(victim.read(64).unwrap(), [0xa0; BLOCK_BYTES]);

    // The bystander tenant is completely untouched: every address —
    // including the ones mirroring the tampered shard — still serves,
    // and new work (blocking and pipelined) succeeds with zero errors.
    for i in 0..8u64 {
        assert_eq!(bystander.read(i * 64).unwrap(), [0xb1; BLOCK_BYTES]);
    }
    let mut pipelined = PipelinedClient::connect(server.addr(), 1, 8).unwrap();
    for i in 0..8u64 {
        pipelined
            .submit_write(i * 64, &[0xcc; BLOCK_BYTES])
            .unwrap();
    }
    for (_, outcome) in pipelined.drain().unwrap() {
        outcome.expect("bystander write failed during the attack");
    }
    for i in 0..8u64 {
        assert_eq!(bystander.read(i * 64).unwrap(), [0xcc; BLOCK_BYTES]);
    }

    // Telemetry attributes the damage to the right subtree.
    let snap = server.telemetry();
    assert!(snap.counter("server/tenant0/ops_err").unwrap() >= 2);
    assert_eq!(snap.counter("server/tenant1/ops_err"), Some(0));

    pipelined.goodbye().unwrap();
    bystander.goodbye().unwrap();
    drop(victim);
    let _ = server.shutdown();
}
