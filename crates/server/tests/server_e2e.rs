//! End-to-end coverage of the serving planes: blocking and pipelined
//! clients against a live loopback server, handshake policy (tenants,
//! quotas, window clamping), and the per-tenant telemetry subtree.
//! Every scenario runs in **both** serving modes — the reactor must be
//! wire-indistinguishable from thread-per-connection.

use ame_server::{
    Client, ClientError, PipelinedClient, Server, ServerConfig, ServerMode, TenantSpec, WireError,
};
use ame_store::{StoreConfig, StoreError, BLOCK_BYTES};

fn small_store() -> StoreConfig {
    StoreConfig {
        shards: 2,
        shard_bytes: 64 * 1024,
        ..StoreConfig::default()
    }
}

fn two_tenant_server(mode: ServerMode) -> Server {
    Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            tenants: vec![
                TenantSpec::new(0, small_store()),
                TenantSpec::new(1, small_store()),
            ],
            mode,
            ..ServerConfig::default()
        },
    )
    .expect("bind")
}

fn block(fill: u8) -> [u8; BLOCK_BYTES] {
    [fill; BLOCK_BYTES]
}

#[test]
fn blocking_client_read_write_cas_reactor() {
    blocking_client_read_write_cas(ServerMode::reactor());
}

#[test]
fn blocking_client_read_write_cas_threaded() {
    blocking_client_read_write_cas(ServerMode::Threaded);
}

fn blocking_client_read_write_cas(mode: ServerMode) {
    let server = two_tenant_server(mode);
    let mut client = Client::connect(server.addr(), 0).unwrap();

    client.write(0, &block(0xa1)).unwrap();
    client.write(64, &block(0xa2)).unwrap();
    assert_eq!(client.read(0).unwrap(), block(0xa1));
    assert_eq!(client.read(64).unwrap(), block(0xa2));

    // CAS semantics: pre-image returned; swap takes iff it matched.
    let pre = client.cas(0, &block(0xa1), &block(0xb1)).unwrap();
    assert_eq!(pre, block(0xa1), "matched CAS reports the old value");
    assert_eq!(client.read(0).unwrap(), block(0xb1), "matched CAS wrote");
    let pre = client.cas(0, &block(0xa1), &block(0xc1)).unwrap();
    assert_eq!(pre, block(0xb1), "failed CAS reports the current value");
    assert_eq!(client.read(0).unwrap(), block(0xb1), "failed CAS left it");

    // Store errors travel typed: unaligned and out-of-range.
    match client.read(3) {
        Err(ClientError::Wire(WireError::Store(StoreError::Unaligned { addr: 3 }))) => {}
        other => panic!("expected typed Unaligned, got {other:?}"),
    }
    match client.write(1 << 40, &block(0)) {
        Err(ClientError::Wire(WireError::Store(StoreError::OutOfRange { .. }))) => {}
        other => panic!("expected typed OutOfRange, got {other:?}"),
    }

    client.goodbye().unwrap();
    let _ = server.shutdown();
}

#[test]
fn pipelined_window_and_out_of_order_completions_reactor() {
    pipelined_window_and_out_of_order_completions(ServerMode::reactor());
}

#[test]
fn pipelined_window_and_out_of_order_completions_threaded() {
    pipelined_window_and_out_of_order_completions(ServerMode::Threaded);
}

fn pipelined_window_and_out_of_order_completions(mode: ServerMode) {
    let server = two_tenant_server(mode);
    let mut client = PipelinedClient::connect(server.addr(), 1, 8).unwrap();
    assert_eq!(client.window(), 8);
    assert_eq!(client.shards(), 2);

    // Fill the window with writes across both shards.
    let mut expected = Vec::new();
    for i in 0..8u64 {
        let id = client.submit_write(i * 64, &block(i as u8 + 1)).unwrap();
        expected.push(id);
    }
    assert!(matches!(
        client.submit_write(0, &block(0)),
        Err(ClientError::WindowFull)
    ));
    let acks = client.drain().unwrap();
    assert_eq!(acks.len(), 8);
    for (id, outcome) in &acks {
        assert!(expected.contains(id));
        assert!(outcome.is_ok(), "write {id} failed: {outcome:?}");
    }

    // Reads come back tagged with our ids even when shards complete
    // out of submission order.
    for i in 0..8u64 {
        client.submit_read(i * 64).unwrap();
    }
    let mut seen = 0;
    while client.in_flight() > 0 {
        let (id, outcome) = client.recv().unwrap();
        // Request ids continue from the write batch (9..=16 after
        // hello=1, writes=2..=9... exact values are client-internal);
        // what matters is each answers a known read with the right data.
        let i = id - 10; // hello=1, 8 writes, 1 bounced (no id), reads start at 10
        match outcome {
            Ok(ame_server::PipelinedValue::Data(b)) => assert_eq!(b, block(i as u8 + 1)),
            other => panic!("read {id} failed: {other:?}"),
        }
        seen += 1;
    }
    assert_eq!(seen, 8);

    client.goodbye().unwrap();
    let _ = server.shutdown();
}

#[test]
fn handshake_policy_unknown_tenant_quota_and_window_clamp_reactor() {
    handshake_policy_unknown_tenant_quota_and_window_clamp(ServerMode::reactor());
}

#[test]
fn handshake_policy_unknown_tenant_quota_and_window_clamp_threaded() {
    handshake_policy_unknown_tenant_quota_and_window_clamp(ServerMode::Threaded);
}

fn handshake_policy_unknown_tenant_quota_and_window_clamp(mode: ServerMode) {
    let mut tight = TenantSpec::new(3, small_store());
    tight.max_connections = 1;
    tight.max_window = 4;
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            tenants: vec![tight],
            mode,
            ..ServerConfig::default()
        },
    )
    .unwrap();

    // Unknown tenant: typed rejection.
    match Client::connect(server.addr(), 9) {
        Err(ClientError::Wire(WireError::UnknownTenant(9))) => {}
        other => panic!("expected UnknownTenant, got {other:?}"),
    }

    // Window request above the tenant ceiling is clamped, not refused.
    let first = PipelinedClient::connect(server.addr(), 3, 999).unwrap();
    assert_eq!(first.window(), 4);

    // Connection quota: the second concurrent connection is refused.
    match Client::connect(server.addr(), 3) {
        Err(ClientError::Wire(WireError::QuotaExceeded)) => {}
        other => panic!("expected QuotaExceeded, got {other:?}"),
    }

    // Releasing the first connection frees the slot.
    first.goodbye().unwrap();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    loop {
        match Client::connect(server.addr(), 3) {
            Ok(c) => {
                c.goodbye().unwrap();
                break;
            }
            Err(ClientError::Wire(WireError::QuotaExceeded))
                if std::time::Instant::now() < deadline =>
            {
                // The server-side connection teardown is asynchronous.
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
            other => panic!("expected the quota slot back, got {other:?}"),
        }
    }
    let _ = server.shutdown();
}

#[test]
fn saturated_store_applies_backpressure_reactor() {
    saturated_store_applies_backpressure(ServerMode::reactor());
}

#[test]
fn saturated_store_applies_backpressure_threaded() {
    saturated_store_applies_backpressure(ServerMode::Threaded);
}

/// A store sized to choke (single shard, one queue slot, one op per
/// batch) under a 16-deep pipelined client: saturation must surface as
/// *backpressure* — every operation still completes, none is bounced
/// with `Overloaded` — and the stall counter proves the path ran.
fn saturated_store_applies_backpressure(mode: ServerMode) {
    let store = StoreConfig {
        shards: 1,
        shard_bytes: 64 * 1024,
        queue_depth: 1,
        max_batch: 1,
        ..StoreConfig::default()
    };
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            tenants: vec![TenantSpec::new(0, store)],
            mode,
            ..ServerConfig::default()
        },
    )
    .expect("bind");

    let mut client = PipelinedClient::connect(server.addr(), 0, 16).unwrap();
    let mut completed = 0usize;
    for i in 0..256u64 {
        let (_, reaped) = client
            .submit_write_wait((i % 64) * 64, &block(i as u8))
            .unwrap();
        assert!(
            reaped.iter().all(|(_, r)| r.is_ok()),
            "saturation bounced a valid op: {reaped:?}"
        );
        completed += reaped.len();
    }
    let tail = client.drain().unwrap();
    assert!(tail.iter().all(|(_, r)| r.is_ok()), "tail: {tail:?}");
    completed += tail.len();
    assert_eq!(completed, 256, "every submitted op must complete");
    client.goodbye().unwrap();

    let snap = server.telemetry();
    assert!(
        snap.counter("server/tenant0/overload_stalls").unwrap() >= 1,
        "a one-slot queue under a 16-deep pipeline must have stalled"
    );
    assert_eq!(snap.counter("server/tenant0/ops_err"), Some(0));
    let _ = server.shutdown();
}

#[test]
fn telemetry_has_per_tenant_subtrees_reactor() {
    telemetry_has_per_tenant_subtrees(ServerMode::reactor());
}

#[test]
fn telemetry_has_per_tenant_subtrees_threaded() {
    telemetry_has_per_tenant_subtrees(ServerMode::Threaded);
}

fn telemetry_has_per_tenant_subtrees(mode: ServerMode) {
    let server = two_tenant_server(mode);
    let mut c0 = Client::connect(server.addr(), 0).unwrap();
    c0.write(0, &block(1)).unwrap();
    assert_eq!(c0.read(0).unwrap(), block(1));
    c0.goodbye().unwrap();

    let snap = server.telemetry();
    // Serving-mode provenance: the gauge must agree with what actually
    // runs (post-fallback), and on Linux a requested reactor must not
    // have silently fallen back.
    let reactor_threads = snap.gauge("server/reactor_threads").unwrap();
    match server.mode_name() {
        "reactor" => assert!(reactor_threads >= 1.0),
        _ => assert_eq!(reactor_threads, 0.0),
    }
    if cfg!(target_os = "linux") && matches!(mode, ServerMode::Reactor { .. }) {
        assert_eq!(server.mode_name(), "reactor");
        assert_eq!(snap.gauge("server/reactor_fallback"), Some(0.0));
    }
    assert!(snap.counter("server/connections_accepted").unwrap() >= 1);
    assert_eq!(snap.counter("server/tenant0/connections_accepted"), Some(1));
    assert!(snap.counter("server/tenant0/ops_ok").unwrap() >= 2);
    assert_eq!(snap.counter("server/tenant1/ops_ok"), Some(0));
    // The tenant's store metrics hang under its subtree.
    assert!(
        snap.iter()
            .any(|(path, _)| path.starts_with("server/tenant0/store/")),
        "tenant store subtree missing: {:?}",
        snap.iter().map(|(p, _)| p.to_string()).collect::<Vec<_>>()
    );
    let _ = server.shutdown();
}
