//! End-to-end coverage of the tentpole: blocking and pipelined clients
//! against a live loopback server, handshake policy (tenants, quotas,
//! window clamping), and the per-tenant telemetry subtree.

use ame_server::{
    Client, ClientError, PipelinedClient, Server, ServerConfig, TenantSpec, WireError,
};
use ame_store::{StoreConfig, StoreError, BLOCK_BYTES};

fn small_store() -> StoreConfig {
    StoreConfig {
        shards: 2,
        shard_bytes: 64 * 1024,
        ..StoreConfig::default()
    }
}

fn two_tenant_server() -> Server {
    Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            tenants: vec![
                TenantSpec::new(0, small_store()),
                TenantSpec::new(1, small_store()),
            ],
            ..ServerConfig::default()
        },
    )
    .expect("bind")
}

fn block(fill: u8) -> [u8; BLOCK_BYTES] {
    [fill; BLOCK_BYTES]
}

#[test]
fn blocking_client_read_write_cas() {
    let server = two_tenant_server();
    let mut client = Client::connect(server.addr(), 0).unwrap();

    client.write(0, &block(0xa1)).unwrap();
    client.write(64, &block(0xa2)).unwrap();
    assert_eq!(client.read(0).unwrap(), block(0xa1));
    assert_eq!(client.read(64).unwrap(), block(0xa2));

    // CAS semantics: pre-image returned; swap takes iff it matched.
    let pre = client.cas(0, &block(0xa1), &block(0xb1)).unwrap();
    assert_eq!(pre, block(0xa1), "matched CAS reports the old value");
    assert_eq!(client.read(0).unwrap(), block(0xb1), "matched CAS wrote");
    let pre = client.cas(0, &block(0xa1), &block(0xc1)).unwrap();
    assert_eq!(pre, block(0xb1), "failed CAS reports the current value");
    assert_eq!(client.read(0).unwrap(), block(0xb1), "failed CAS left it");

    // Store errors travel typed: unaligned and out-of-range.
    match client.read(3) {
        Err(ClientError::Wire(WireError::Store(StoreError::Unaligned { addr: 3 }))) => {}
        other => panic!("expected typed Unaligned, got {other:?}"),
    }
    match client.write(1 << 40, &block(0)) {
        Err(ClientError::Wire(WireError::Store(StoreError::OutOfRange { .. }))) => {}
        other => panic!("expected typed OutOfRange, got {other:?}"),
    }

    client.goodbye().unwrap();
    let _ = server.shutdown();
}

#[test]
fn pipelined_window_and_out_of_order_completions() {
    let server = two_tenant_server();
    let mut client = PipelinedClient::connect(server.addr(), 1, 8).unwrap();
    assert_eq!(client.window(), 8);
    assert_eq!(client.shards(), 2);

    // Fill the window with writes across both shards.
    let mut expected = Vec::new();
    for i in 0..8u64 {
        let id = client.submit_write(i * 64, &block(i as u8 + 1)).unwrap();
        expected.push(id);
    }
    assert!(matches!(
        client.submit_write(0, &block(0)),
        Err(ClientError::WindowFull)
    ));
    let acks = client.drain().unwrap();
    assert_eq!(acks.len(), 8);
    for (id, outcome) in &acks {
        assert!(expected.contains(id));
        assert!(outcome.is_ok(), "write {id} failed: {outcome:?}");
    }

    // Reads come back tagged with our ids even when shards complete
    // out of submission order.
    for i in 0..8u64 {
        client.submit_read(i * 64).unwrap();
    }
    let mut seen = 0;
    while client.in_flight() > 0 {
        let (id, outcome) = client.recv().unwrap();
        // Request ids continue from the write batch (9..=16 after
        // hello=1, writes=2..=9... exact values are client-internal);
        // what matters is each answers a known read with the right data.
        let i = id - 10; // hello=1, 8 writes, 1 bounced (no id), reads start at 10
        match outcome {
            Ok(ame_server::PipelinedValue::Data(b)) => assert_eq!(b, block(i as u8 + 1)),
            other => panic!("read {id} failed: {other:?}"),
        }
        seen += 1;
    }
    assert_eq!(seen, 8);

    client.goodbye().unwrap();
    let _ = server.shutdown();
}

#[test]
fn handshake_policy_unknown_tenant_quota_and_window_clamp() {
    let mut tight = TenantSpec::new(3, small_store());
    tight.max_connections = 1;
    tight.max_window = 4;
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            tenants: vec![tight],
            ..ServerConfig::default()
        },
    )
    .unwrap();

    // Unknown tenant: typed rejection.
    match Client::connect(server.addr(), 9) {
        Err(ClientError::Wire(WireError::UnknownTenant(9))) => {}
        other => panic!("expected UnknownTenant, got {other:?}"),
    }

    // Window request above the tenant ceiling is clamped, not refused.
    let first = PipelinedClient::connect(server.addr(), 3, 999).unwrap();
    assert_eq!(first.window(), 4);

    // Connection quota: the second concurrent connection is refused.
    match Client::connect(server.addr(), 3) {
        Err(ClientError::Wire(WireError::QuotaExceeded)) => {}
        other => panic!("expected QuotaExceeded, got {other:?}"),
    }

    // Releasing the first connection frees the slot.
    first.goodbye().unwrap();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    loop {
        match Client::connect(server.addr(), 3) {
            Ok(c) => {
                c.goodbye().unwrap();
                break;
            }
            Err(ClientError::Wire(WireError::QuotaExceeded))
                if std::time::Instant::now() < deadline =>
            {
                // The server-side connection teardown is asynchronous.
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
            other => panic!("expected the quota slot back, got {other:?}"),
        }
    }
    let _ = server.shutdown();
}

#[test]
fn telemetry_has_per_tenant_subtrees() {
    let server = two_tenant_server();
    let mut c0 = Client::connect(server.addr(), 0).unwrap();
    c0.write(0, &block(1)).unwrap();
    assert_eq!(c0.read(0).unwrap(), block(1));
    c0.goodbye().unwrap();

    let snap = server.telemetry();
    assert!(snap.counter("server/connections_accepted").unwrap() >= 1);
    assert_eq!(snap.counter("server/tenant0/connections_accepted"), Some(1));
    assert!(snap.counter("server/tenant0/ops_ok").unwrap() >= 2);
    assert_eq!(snap.counter("server/tenant1/ops_ok"), Some(0));
    // The tenant's store metrics hang under its subtree.
    assert!(
        snap.iter()
            .any(|(path, _)| path.starts_with("server/tenant0/store/")),
        "tenant store subtree missing: {:?}",
        snap.iter().map(|(p, _)| p.to_string()).collect::<Vec<_>>()
    );
    let _ = server.shutdown();
}
