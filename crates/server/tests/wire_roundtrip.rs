//! Satellite: every `StoreError` variant maps to a distinct wire code
//! and decodes back to the exact error, and codes this build does not
//! know stay talkable-to via `WireError::Unknown`.
//!
//! The encode side (`protocol::encode_store_error`) is a `match` with
//! no wildcard arm, so *adding* a `StoreError` variant breaks the build
//! until it gets a code; this test pins the *runtime* contract for the
//! variants that exist today.

use ame_engine::ReadError;
use ame_server::protocol::{
    code, decode_error, encode_server_error, encode_store_error, WireError,
};
use ame_store::StoreError;
use ame_tree::merkle::VerifyError;
use std::collections::HashSet;

/// One value per `StoreError` variant, with every `ShardPoisoned`
/// cause shape, and field values chosen so truncated or shuffled
/// payload decoding cannot accidentally pass.
fn specimens() -> Vec<StoreError> {
    vec![
        StoreError::OutOfRange {
            addr: 0xdead_beef_0040,
            len: 0x1_0000_0001,
        },
        StoreError::Unaligned { addr: 0x3f },
        StoreError::Overloaded { shard: 7 },
        StoreError::ShardPoisoned {
            shard: 1,
            cause: None,
        },
        StoreError::ShardPoisoned {
            shard: 2,
            cause: Some(ReadError::Tree(VerifyError {
                level: 3,
                node: 0x1234_5678_9abc,
            })),
        },
        StoreError::ShardPoisoned {
            shard: 3,
            cause: Some(ReadError::MacUncorrectable),
        },
        StoreError::ShardPoisoned {
            shard: 4,
            cause: Some(ReadError::EccUncorrectable),
        },
        StoreError::ShardPoisoned {
            shard: 5,
            cause: Some(ReadError::IntegrityViolation),
        },
        StoreError::Disconnected { shard: 6 },
        StoreError::Timeout,
        StoreError::TxnAborted,
        StoreError::TxnConflict { addr: 0x80c0 },
    ]
}

#[test]
fn every_store_error_roundtrips_exactly() {
    for e in specimens() {
        let (code, payload) = encode_store_error(&e);
        let decoded = decode_error(code, &payload);
        assert_eq!(decoded, WireError::Store(e), "code {code:#04x}");
    }
}

#[test]
fn store_error_codes_are_distinct_per_variant() {
    // One code per *variant* — the five ShardPoisoned cause shapes
    // intentionally share SHARD_POISONED and differ in payload.
    let codes: HashSet<u8> = specimens()
        .iter()
        .map(|e| encode_store_error(e).0)
        .collect();
    assert_eq!(codes.len(), 8, "eight variants, eight codes: {codes:?}");
    // And the exact table is part of the wire contract: renumbering
    // breaks deployed clients, so pin it.
    let expected: HashSet<u8> = [
        code::OUT_OF_RANGE,
        code::UNALIGNED,
        code::OVERLOADED,
        code::SHARD_POISONED,
        code::DISCONNECTED,
        code::TIMEOUT,
        code::TXN_ABORTED,
        code::TXN_CONFLICT,
    ]
    .into();
    assert_eq!(codes, expected);
}

#[test]
fn server_rejections_roundtrip() {
    for e in [
        WireError::ShuttingDown,
        WireError::BadFrame,
        WireError::UnknownOpcode(0x99),
        WireError::DuplicateRequestId,
        WireError::UnknownTenant(42),
        WireError::QuotaExceeded,
        WireError::BadVersion(7),
    ] {
        let (code, payload) = encode_server_error(&e);
        assert_eq!(decode_error(code, &payload), e, "code {code:#04x}");
    }
}

#[test]
fn unknown_codes_decode_future_proof() {
    // A newer server may answer with codes this build has never heard
    // of; they must decode (to Unknown), not crash or alias a known
    // error.
    for code in [0x08u8, 0x18, 0x1f, 0x27, 0x7f, 0xff] {
        assert_eq!(
            decode_error(code, &[1, 2, 3]),
            WireError::Unknown(code),
            "code {code:#04x} must not alias a known error"
        );
    }
    // And Unknown re-encodes to the same code, so a proxy can pass it
    // through unchanged.
    let (c, p) = encode_server_error(&WireError::Unknown(0x7f));
    assert_eq!((c, p.as_slice()), (0x7f, &[][..]));
}

#[test]
fn truncated_error_payloads_do_not_panic() {
    // Hostile/buggy payloads for every known code: decoding must stay
    // total. Store-error codes with short payloads fall back to
    // Unknown (the code was recognised but the payload lied).
    for e in specimens() {
        let (code, payload) = encode_store_error(&e);
        for cut in 0..payload.len() {
            let _ = decode_error(code, &payload[..cut]);
        }
    }
}
