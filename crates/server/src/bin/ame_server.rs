//! Standalone `ame-server`: hosts N in-memory (or durable) tenants on
//! `AME_SERVER_ADDR` until SIGTERM/ctrl-c, then drains and checkpoints.
//!
//! ```text
//! ame_server [--addr HOST:PORT] [--tenants N] [--persist DIR]
//!            [--shards N] [--shard-kib N] [--max-conns N] [--max-window N]
//!            [--mode reactor|threaded] [--reactor-threads N]
//! ```
//!
//! Environment: `AME_SERVER_ADDR` is the default listen address
//! (flag overrides it; built-in default `127.0.0.1:4075`),
//! `AME_SERVER_MAX_CONNS` / `AME_SERVER_MAX_WINDOW` are the default
//! per-tenant quotas (`--max-conns` / `--max-window` override them),
//! and `AME_SERVER_REACTOR_THREADS` is the default event-loop thread
//! count (`--reactor-threads` overrides it; built-in default
//! `min(4, cores)`). `--mode threaded` selects the two-threads-per-
//! connection plane instead of the epoll reactor.

#![deny(unsafe_code)]

use ame_server::{default_reactor_threads, Server, ServerConfig, ServerMode, TenantSpec};
use ame_store::StoreConfig;
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::time::Duration;

/// Minimal POSIX signal hook — the only unsafe in the crate, quarantined
/// here the same way `ame-crypto` quarantines its intrinsics: a raw
/// `signal(2)` binding that flips an atomic the main loop polls. No libc
/// crate, no handler logic beyond the flag store.
#[cfg(unix)]
mod sig {
    #![allow(unsafe_code)]

    use std::sync::atomic::{AtomicBool, Ordering};

    pub static STOP: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        STOP.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        unsafe {
            signal(SIGINT, on_signal as *const () as usize);
            signal(SIGTERM, on_signal as *const () as usize);
        }
    }
}

#[cfg(not(unix))]
mod sig {
    use std::sync::atomic::AtomicBool;

    pub static STOP: AtomicBool = AtomicBool::new(false);

    pub fn install() {}
}

struct Args {
    addr: String,
    tenants: usize,
    persist: Option<PathBuf>,
    shards: usize,
    shard_kib: u64,
    max_conns: usize,
    max_window: usize,
    mode: ServerMode,
}

fn env_usize(name: &str, default: usize) -> usize {
    match std::env::var(name) {
        Ok(v) => v
            .parse()
            .unwrap_or_else(|_| panic!("{name} must be a number, got {v:?}")),
        Err(_) => default,
    }
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: std::env::var("AME_SERVER_ADDR").unwrap_or_else(|_| "127.0.0.1:4075".into()),
        tenants: 2,
        persist: None,
        shards: 4,
        shard_kib: 256,
        max_conns: env_usize("AME_SERVER_MAX_CONNS", 64),
        max_window: env_usize("AME_SERVER_MAX_WINDOW", 64),
        mode: ServerMode::Reactor {
            threads: env_usize("AME_SERVER_REACTOR_THREADS", default_reactor_threads()),
        },
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} expects a value"))
        };
        match flag.as_str() {
            "--addr" => args.addr = value("--addr"),
            "--tenants" => args.tenants = value("--tenants").parse().expect("--tenants"),
            "--persist" => args.persist = Some(PathBuf::from(value("--persist"))),
            "--shards" => args.shards = value("--shards").parse().expect("--shards"),
            "--shard-kib" => args.shard_kib = value("--shard-kib").parse().expect("--shard-kib"),
            "--max-conns" => args.max_conns = value("--max-conns").parse().expect("--max-conns"),
            "--max-window" => {
                args.max_window = value("--max-window").parse().expect("--max-window");
            }
            "--mode" => {
                args.mode = match value("--mode").as_str() {
                    "threaded" => ServerMode::Threaded,
                    "reactor" => match args.mode {
                        // Keep an earlier --reactor-threads / env value.
                        ServerMode::Reactor { threads } => ServerMode::Reactor { threads },
                        ServerMode::Threaded => ServerMode::reactor(),
                    },
                    other => panic!("--mode expects reactor|threaded, got {other:?}"),
                };
            }
            "--reactor-threads" => {
                let threads: usize = value("--reactor-threads")
                    .parse()
                    .expect("--reactor-threads");
                args.mode = ServerMode::Reactor { threads };
            }
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    sig::install();

    let template = StoreConfig {
        shards: args.shards,
        shard_bytes: args.shard_kib * 1024,
        ..StoreConfig::default()
    };
    let tenants = (0..args.tenants)
        .map(|id| {
            let mut spec = TenantSpec::new(id, template.clone());
            spec.max_connections = args.max_conns;
            spec.max_window = args.max_window;
            spec.persist_dir = args.persist.as_ref().map(|d| d.join(format!("tenant{id}")));
            spec
        })
        .collect();

    let server = Server::bind(
        args.addr.as_str(),
        ServerConfig {
            tenants,
            mode: args.mode,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    println!(
        "ame-server listening on {} ({} tenants, {} shards x {} KiB each, {} mode, {} reactor threads)",
        server.addr(),
        args.tenants,
        args.shards,
        args.shard_kib,
        server.mode_name(),
        server.reactor_threads(),
    );

    while !sig::STOP.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(100));
    }

    println!("draining…");
    let reports = server.shutdown();
    for (tenant, report) in reports {
        println!(
            "tenant{tenant}: {} shards, all resealed: {}",
            report.shards.len(),
            report.all_resealed()
        );
    }
}
