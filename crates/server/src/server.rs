//! The serving loop: a TCP listener, per-tenant stores with quotas and
//! telemetry, and two interchangeable connection-serving planes.
//!
//! # Threading model
//!
//! One accept thread, plus one of two serving modes ([`ServerMode`],
//! identical wire behaviour, no async runtime):
//!
//! * **Reactor** (the default): a small fixed pool of epoll event-loop
//!   threads (see [`crate::reactor`]); each connection is a nonblocking
//!   state machine owned by one loop, and shard workers rouse the loop
//!   through per-session eventfd wakeups when completions land. Thread
//!   count is constant no matter how many clients connect. On hosts
//!   without epoll the server falls back to threaded mode with a
//!   recorded telemetry gauge — never a silent behaviour change.
//! * **Threaded** (the PR 7 model): **two** threads per connection. The
//!   connection's *reader* thread parses frames and submits operations
//!   through a [`SessionSubmitter`]; a scoped *writer* thread blocks on
//!   the paired [`SessionReaper`] and streams completions back as they
//!   finish (out of order across shards, FIFO within one — the store's
//!   ordering contract travels the wire unchanged). Rejections that
//!   never reach the store (malformed frames, duplicate request ids,
//!   window overload) are answered inline by the reader through a
//!   shared write-half mutex.
//!
//! # Tenancy
//!
//! Every tenant is an independently keyed [`SecureStore`] (see
//! [`EngineConfig::for_tenant`](ame_engine::EngineConfig::for_tenant)):
//! a client authenticates its namespace in `Hello` and can never name
//! another tenant's blocks, and a poisoned shard in one tenant's store
//! never rejects another tenant's traffic. Per-tenant connection and
//! window quotas bound what one tenant can demand of the process, and
//! each tenant's metrics live under `server/tenant<T>/…`.
//!
//! # Shutdown
//!
//! [`Server::shutdown`] flips a flag, wakes the accept loop, and lets
//! every connection drain: readers stop admitting operations (answering
//! [`code::SHUTTING_DOWN`](crate::protocol::code::SHUTTING_DOWN)),
//! writers flush every already-submitted completion — no acked response
//! is lost — and each connection ends with a typed shutting-down notice
//! (request id 0). Only then are the stores shut down through their
//! durable checkpoint path.

use crate::protocol::{
    self, code, encode_server_error, encode_store_error, op, write_frame, Frame, FrameError,
    WireError, DEFAULT_MAX_FRAME, HEADER_BYTES, PROTOCOL_VERSION,
};
use ame_store::{
    Reaped, SecureStore, SessionConfig, SessionSubmitter, ShutdownReport, StoreConfig, StoreError,
    StoreOp, StoreValue, Ticket, BLOCK_BYTES,
};
use ame_telemetry::{Snapshot, StatsRegistry};
use std::collections::{HashMap, HashSet};
use std::io::{self, ErrorKind, Read};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// One tenant hosted by a [`Server`]: an isolated key namespace with
/// its own store and quotas.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Tenant id — the namespace clients name in `Hello`, and the
    /// `tenant` term of the per-shard key derivation.
    pub id: usize,
    /// Store shape for this tenant. The `tenant` field is overwritten
    /// with `id` at bind time, so two specs sharing a template config
    /// still get disjoint keys.
    pub config: StoreConfig,
    /// Durable root for this tenant's snapshots and logs; `None` for a
    /// volatile in-memory store.
    pub persist_dir: Option<PathBuf>,
    /// Connection quota: further `Hello`s are answered
    /// [`code::QUOTA_EXCEEDED`](crate::protocol::code::QUOTA_EXCEEDED).
    pub max_connections: usize,
    /// Ceiling on the per-shard in-flight window a connection may
    /// request; `Hello` grants `min(requested, max_window)`.
    pub max_window: usize,
}

impl TenantSpec {
    /// A tenant with default quotas (64 connections, window ≤ 64).
    #[must_use]
    pub fn new(id: usize, config: StoreConfig) -> Self {
        Self {
            id,
            config,
            persist_dir: None,
            max_connections: 64,
            max_window: 64,
        }
    }
}

/// How connections are served after `accept`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerMode {
    /// Two OS threads per connection. Simple, but thread count grows
    /// with the client population.
    Threaded,
    /// A fixed pool of epoll event-loop threads; each connection is a
    /// nonblocking state machine. Thread count stays constant no matter
    /// how many clients connect. Requires epoll + eventfd; on other
    /// hosts the server falls back to [`ServerMode::Threaded`] and
    /// records the fallback in telemetry.
    Reactor {
        /// Event-loop thread count (clamped to at least 1).
        threads: usize,
    },
}

impl ServerMode {
    /// The default reactor shape: `min(4, cores)` event-loop threads.
    #[must_use]
    pub fn reactor() -> Self {
        Self::Reactor {
            threads: default_reactor_threads(),
        }
    }

    /// `"threaded"` or `"reactor"` — the provenance string benches
    /// record next to their numbers.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Self::Threaded => "threaded",
            Self::Reactor { .. } => "reactor",
        }
    }
}

/// `min(4, available cores)`: a handful of event loops saturates the
/// store long before core count matters, and a small pool keeps the
/// constant-thread-count claim honest on big machines.
#[must_use]
pub fn default_reactor_threads() -> usize {
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    cores.min(4).max(1)
}

/// Server-wide knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// The hosted tenants. Ids must be unique.
    pub tenants: Vec<TenantSpec>,
    /// Ceiling on the frame length prefix; larger prefixes are hostile
    /// and close the connection.
    pub max_frame: u32,
    /// How often blocked reads and reaps wake to check the shutdown
    /// flag. Latency of shutdown, not of requests.
    pub poll_interval: Duration,
    /// Connection-serving plane. Defaults to the reactor.
    pub mode: ServerMode,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            tenants: Vec::new(),
            max_frame: DEFAULT_MAX_FRAME,
            poll_interval: Duration::from_millis(50),
            mode: ServerMode::reactor(),
        }
    }
}

/// Per-tenant counters, reported under `server/tenant<T>/…`.
#[derive(Debug, Default)]
pub(crate) struct TenantCounters {
    pub(crate) connections_accepted: AtomicU64,
    pub(crate) quota_rejections: AtomicU64,
    pub(crate) ops_ok: AtomicU64,
    pub(crate) ops_err: AtomicU64,
    pub(crate) bad_frames: AtomicU64,
    pub(crate) duplicate_request_ids: AtomicU64,
    pub(crate) unknown_opcodes: AtomicU64,
    pub(crate) shutdown_rejections: AtomicU64,
    /// Times a serving plane paused reading a connection because the
    /// store reported [`StoreError::Overloaded`] — backpressure applied
    /// instead of bouncing a valid operation back to the client.
    pub(crate) overload_stalls: AtomicU64,
}

pub(crate) struct Tenant {
    pub(crate) id: usize,
    pub(crate) store: SecureStore,
    pub(crate) connections: AtomicUsize,
    pub(crate) max_connections: usize,
    pub(crate) max_window: usize,
    pub(crate) counters: TenantCounters,
}

/// Server-level counters (events before a connection has a tenant).
#[derive(Debug, Default)]
pub(crate) struct ServerCounters {
    pub(crate) connections_accepted: AtomicU64,
    pub(crate) bad_version: AtomicU64,
    pub(crate) unknown_tenant: AtomicU64,
    pub(crate) pre_hello_failures: AtomicU64,
}

pub(crate) struct Shared {
    pub(crate) tenants: Vec<Tenant>,
    pub(crate) counters: ServerCounters,
    pub(crate) shutdown: AtomicBool,
    pub(crate) max_frame: u32,
    pub(crate) poll_interval: Duration,
    pub(crate) conn_handles: Mutex<Vec<JoinHandle<()>>>,
    /// `Some` when serving in reactor mode.
    pub(crate) reactor: Option<crate::reactor::ReactorPool>,
    /// True when a reactor was requested but the host has no epoll, so
    /// the server is running threaded instead.
    pub(crate) reactor_fallback: bool,
}

impl Shared {
    pub(crate) fn tenant(&self, id: usize) -> Option<&Tenant> {
        self.tenants.iter().find(|t| t.id == id)
    }
}

/// A running server. Dropping it without calling [`Server::shutdown`]
/// leaks the listener thread; call `shutdown` for an orderly drain and
/// durable checkpoint.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_handle: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server").field("addr", &self.addr).finish()
    }
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port), boots
    /// every tenant's store, and starts accepting connections.
    ///
    /// # Errors
    ///
    /// Propagates bind failures and durable-store open failures.
    ///
    /// # Panics
    ///
    /// Panics if `config.tenants` is empty or contains duplicate ids.
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> io::Result<Self> {
        assert!(
            !config.tenants.is_empty(),
            "a server needs at least one tenant"
        );
        {
            let mut ids: Vec<usize> = config.tenants.iter().map(|t| t.id).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), config.tenants.len(), "tenant ids must be unique");
        }
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let mut tenants = Vec::with_capacity(config.tenants.len());
        for spec in config.tenants {
            let mut store_config = spec.config;
            store_config.tenant = spec.id;
            let store = match &spec.persist_dir {
                Some(dir) => SecureStore::open(dir, store_config)?,
                None => SecureStore::new(store_config),
            };
            tenants.push(Tenant {
                id: spec.id,
                store,
                connections: AtomicUsize::new(0),
                max_connections: spec.max_connections,
                max_window: spec.max_window.max(1),
                counters: TenantCounters::default(),
            });
        }
        // Resolve the serving mode up front: if the host cannot build
        // the epoll/eventfd plumbing, fall back to threaded serving and
        // say so in telemetry — never a silent half-working reactor.
        let (pool, seeds) = match config.mode {
            ServerMode::Threaded => (None, Vec::new()),
            ServerMode::Reactor { threads } => match crate::reactor::prepare(threads.max(1)) {
                Some((pool, seeds)) => (Some(pool), seeds),
                None => (None, Vec::new()),
            },
        };
        let reactor_fallback = matches!(config.mode, ServerMode::Reactor { .. }) && pool.is_none();
        let shared = Arc::new(Shared {
            tenants,
            counters: ServerCounters::default(),
            shutdown: AtomicBool::new(false),
            max_frame: config.max_frame,
            poll_interval: config.poll_interval,
            conn_handles: Mutex::new(Vec::new()),
            reactor: pool,
            reactor_fallback,
        });
        for seed in seeds {
            let reactor_shared = Arc::clone(&shared);
            let handle = thread::Builder::new()
                .name("ame-server-reactor".into())
                .spawn(move || crate::reactor::reactor_thread(&reactor_shared, seed))
                .expect("spawn reactor thread");
            shared
                .reactor
                .as_ref()
                .expect("seeds imply a pool")
                .push_handle(handle);
        }
        let accept_shared = Arc::clone(&shared);
        let accept_handle = thread::Builder::new()
            .name("ame-server-accept".into())
            .spawn(move || accept_loop(&listener, &accept_shared))
            .expect("spawn accept thread");
        Ok(Self {
            addr: local,
            shared,
            accept_handle: Some(accept_handle),
        })
    }

    /// The bound address (resolves ephemeral ports).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The serving mode actually running — `"reactor"` or `"threaded"`.
    /// Reports the post-fallback truth, not what was requested.
    #[must_use]
    pub fn mode_name(&self) -> &'static str {
        if self.shared.reactor.is_some() {
            "reactor"
        } else {
            "threaded"
        }
    }

    /// Event-loop thread count (0 when serving threaded).
    #[must_use]
    pub fn reactor_threads(&self) -> usize {
        self.shared.reactor.as_ref().map_or(0, |p| p.threads())
    }

    /// Snapshot of the full metric tree: per-tenant store metrics under
    /// `server/tenant<T>/store/…` plus serving counters under
    /// `server/tenant<T>/…` and `server/…`.
    #[must_use]
    pub fn telemetry(&self) -> Snapshot {
        let mut reg = StatsRegistry::new();
        let c = &self.shared.counters;
        reg.set_counter(
            "server/connections_accepted",
            c.connections_accepted.load(Ordering::Relaxed),
        );
        reg.set_counter("server/bad_version", c.bad_version.load(Ordering::Relaxed));
        reg.set_counter(
            "server/unknown_tenant",
            c.unknown_tenant.load(Ordering::Relaxed),
        );
        reg.set_counter(
            "server/pre_hello_failures",
            c.pre_hello_failures.load(Ordering::Relaxed),
        );
        reg.set_gauge("server/reactor_threads", self.reactor_threads() as f64);
        reg.set_gauge(
            "server/reactor_fallback",
            f64::from(u8::from(self.shared.reactor_fallback)),
        );
        for t in &self.shared.tenants {
            let scope = format!("server/tenant{}", t.id);
            t.store.collect(&mut reg, &format!("{scope}/store"));
            reg.set_gauge(
                &format!("{scope}/connections"),
                t.connections.load(Ordering::Relaxed) as f64,
            );
            let tc = &t.counters;
            for (name, v) in [
                ("connections_accepted", &tc.connections_accepted),
                ("quota_rejections", &tc.quota_rejections),
                ("ops_ok", &tc.ops_ok),
                ("ops_err", &tc.ops_err),
                ("bad_frames", &tc.bad_frames),
                ("duplicate_request_ids", &tc.duplicate_request_ids),
                ("unknown_opcodes", &tc.unknown_opcodes),
                ("shutdown_rejections", &tc.shutdown_rejections),
                ("overload_stalls", &tc.overload_stalls),
            ] {
                reg.set_counter(&format!("{scope}/{name}"), v.load(Ordering::Relaxed));
            }
        }
        reg.snapshot()
    }

    /// Orderly shutdown: stop accepting, drain every connection's
    /// in-flight window (every submitted operation's response is still
    /// delivered), close connections with a typed shutting-down notice,
    /// then run each tenant store's durable checkpoint.
    ///
    /// Returns `(tenant id, report)` per tenant, in spec order.
    ///
    /// # Panics
    ///
    /// Panics if a serving thread panicked.
    #[must_use]
    pub fn shutdown(mut self) -> Vec<(usize, ShutdownReport)> {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // The accept thread blocks in accept(); a throwaway connection
        // wakes it so it can observe the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_handle.take() {
            handle.join().expect("accept thread panicked");
        }
        if let Some(pool) = &self.shared.reactor {
            pool.wake_all();
            for handle in pool.take_handles() {
                handle.join().expect("reactor thread panicked");
            }
        }
        let handles = std::mem::take(&mut *self.shared.conn_handles.lock().unwrap());
        for handle in handles {
            handle.join().expect("connection thread panicked");
        }
        let shared = Arc::try_unwrap(self.shared)
            .unwrap_or_else(|_| panic!("serving threads still hold the server state"));
        shared
            .tenants
            .into_iter()
            .map(|t| (t.id, t.store.shutdown()))
            .collect()
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            // The wake-up connection (or a late client): refuse.
            let _ = write_frame(&mut &stream, code::SHUTTING_DOWN, 0, &[]);
            return;
        }
        shared
            .counters
            .connections_accepted
            .fetch_add(1, Ordering::Relaxed);
        if let Some(pool) = &shared.reactor {
            pool.dispatch(stream);
            continue;
        }
        let conn_shared = Arc::clone(shared);
        let handle = thread::Builder::new()
            .name("ame-server-conn".into())
            .spawn(move || serve_connection(&conn_shared, stream))
            .expect("spawn connection thread");
        shared.conn_handles.lock().unwrap().push(handle);
    }
}

/// Incremental frame reader: accumulates bytes across read timeouts so
/// a poll deadline in the middle of a frame never desynchronises the
/// stream.
struct ConnReader {
    stream: TcpStream,
    buf: Vec<u8>,
    max_frame: u32,
}

enum Polled {
    Frame(Frame),
    /// Read timeout with no complete frame buffered.
    Idle,
    /// Peer closed (or the transport failed).
    Eof,
    /// Unrecoverable framing violation.
    Malformed,
}

impl ConnReader {
    fn poll(&mut self) -> Polled {
        loop {
            match self.try_parse() {
                Ok(Some(frame)) => return Polled::Frame(frame),
                Ok(None) => {}
                Err(_) => return Polled::Malformed,
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => return Polled::Eof,
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    return Polled::Idle
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return Polled::Eof,
            }
        }
    }

    fn try_parse(&mut self) -> Result<Option<Frame>, FrameError> {
        try_parse_frame(&mut self.buf, self.max_frame)
    }
}

/// Pops one complete frame off the front of `buf`, if one is buffered.
/// `Ok(None)` means "keep reading"; an error is a framing violation that
/// desynchronises the stream (the connection must close). Shared by the
/// threaded reader and the reactor's per-connection state machine.
pub(crate) fn try_parse_frame(
    buf: &mut Vec<u8>,
    max_frame: u32,
) -> Result<Option<Frame>, FrameError> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_le_bytes(buf[..4].try_into().unwrap());
    if len > max_frame {
        return Err(FrameError::Oversized {
            len,
            max: max_frame,
        });
    }
    if (len as usize) < HEADER_BYTES {
        return Err(FrameError::TooShort { len });
    }
    let total = 4 + len as usize;
    if buf.len() < total {
        return Ok(None);
    }
    let tag = buf[4];
    let req_id = u64::from_le_bytes(buf[5..13].try_into().unwrap());
    let payload = buf[13..total].to_vec();
    buf.drain(..total);
    Ok(Some(Frame {
        tag,
        req_id,
        payload,
    }))
}

/// Reader/writer shared bookkeeping for one connection: which request
/// id each in-flight ticket answers.
#[derive(Default)]
struct InFlight {
    by_ticket: HashMap<Ticket, u64>,
    ids: HashSet<u64>,
}

type WriteHalf = Arc<Mutex<TcpStream>>;

fn respond(wr: &WriteHalf, tag: u8, req_id: u64, payload: &[u8]) -> io::Result<()> {
    let mut stream = wr.lock().unwrap();
    write_frame(&mut *stream, tag, req_id, payload)
}

fn respond_err(wr: &WriteHalf, req_id: u64, e: &WireError) -> io::Result<()> {
    let (tag, payload) = encode_server_error(e);
    respond(wr, tag, req_id, &payload)
}

/// Why a connection's serving loop ended, deciding the closing notice.
pub(crate) enum ConnEnd {
    Goodbye,
    Eof,
    Shutdown,
    Malformed,
}

/// Outcome of evaluating a `Hello` frame against server state. Counter
/// updates happen inside [`evaluate_hello`]; admission bookkeeping
/// (`connections` increment, session split) stays with the caller.
pub(crate) enum HelloDecision<'a> {
    /// Admit: reply with `reply` (tagged `STATUS_OK`), then serve
    /// `tenant` with a per-shard window of `window`.
    Grant {
        tenant: &'a Tenant,
        window: usize,
        reply: Vec<u8>,
    },
    /// Refuse with this typed error, then close.
    Refuse(WireError),
}

/// Shared `Hello` policy: frame shape, protocol version, tenant lookup,
/// connection quota, window clamp. Both serving planes route their
/// handshake through here so admission rules can never drift apart.
pub(crate) fn evaluate_hello<'a>(shared: &'a Shared, frame: &Frame) -> HelloDecision<'a> {
    if frame.tag != op::HELLO || frame.payload.len() != 12 {
        shared
            .counters
            .pre_hello_failures
            .fetch_add(1, Ordering::Relaxed);
        return HelloDecision::Refuse(WireError::BadFrame);
    }
    let version = u32::from_le_bytes(frame.payload[0..4].try_into().unwrap());
    let tenant_id = u32::from_le_bytes(frame.payload[4..8].try_into().unwrap());
    let requested = u32::from_le_bytes(frame.payload[8..12].try_into().unwrap());
    if version != PROTOCOL_VERSION {
        shared.counters.bad_version.fetch_add(1, Ordering::Relaxed);
        return HelloDecision::Refuse(WireError::BadVersion(PROTOCOL_VERSION));
    }
    let Some(tenant) = shared.tenant(tenant_id as usize) else {
        shared
            .counters
            .unknown_tenant
            .fetch_add(1, Ordering::Relaxed);
        return HelloDecision::Refuse(WireError::UnknownTenant(tenant_id));
    };
    if tenant.connections.load(Ordering::SeqCst) >= tenant.max_connections {
        tenant
            .counters
            .quota_rejections
            .fetch_add(1, Ordering::Relaxed);
        return HelloDecision::Refuse(WireError::QuotaExceeded);
    }
    let granted = (requested.max(1) as usize).min(tenant.max_window);
    let mut reply = Vec::with_capacity(8);
    reply.extend_from_slice(&(granted as u32).to_le_bytes());
    reply.extend_from_slice(&(tenant.store.shards() as u32).to_le_bytes());
    HelloDecision::Grant {
        tenant,
        window: granted,
        reply,
    }
}

fn serve_connection(shared: &Arc<Shared>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.poll_interval));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = ConnReader {
        stream: read_half,
        buf: Vec::new(),
        max_frame: shared.max_frame,
    };
    let wr: WriteHalf = Arc::new(Mutex::new(stream));

    let Some((tenant, window)) = handshake(shared, &mut reader, &wr) else {
        return;
    };
    tenant.connections.fetch_add(1, Ordering::SeqCst);
    tenant
        .counters
        .connections_accepted
        .fetch_add(1, Ordering::Relaxed);

    let (submitter, reaper) = tenant.store.split_session_with(SessionConfig {
        in_flight_window: window,
    });
    let in_flight = Mutex::new(InFlight::default());
    let end = thread::scope(|s| {
        let writer = s.spawn(|| writer_loop(reaper, &in_flight, &wr, tenant, shared.poll_interval));
        let end = reader_loop(shared, tenant, &mut reader, submitter, &in_flight, &wr);
        // `submitter` died with reader_loop; the writer drains the
        // stragglers (acked work is never dropped) and sees Closed.
        writer.join().expect("connection writer panicked");
        end
    });
    if matches!(end, ConnEnd::Shutdown) {
        let _ = respond(&wr, code::SHUTTING_DOWN, 0, &[]);
    }
    tenant.connections.fetch_sub(1, Ordering::SeqCst);
}

/// Runs the `Hello` exchange. `None` means the connection was refused
/// (a typed response was already sent where possible).
fn handshake<'a>(
    shared: &'a Arc<Shared>,
    reader: &mut ConnReader,
    wr: &WriteHalf,
) -> Option<(&'a Tenant, usize)> {
    let frame = loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            let _ = respond_err(wr, 0, &WireError::ShuttingDown);
            return None;
        }
        match reader.poll() {
            Polled::Frame(frame) => break frame,
            Polled::Idle => {}
            Polled::Eof => return None,
            Polled::Malformed => {
                shared
                    .counters
                    .pre_hello_failures
                    .fetch_add(1, Ordering::Relaxed);
                let _ = respond_err(wr, 0, &WireError::BadFrame);
                return None;
            }
        }
    };
    match evaluate_hello(shared, &frame) {
        HelloDecision::Grant {
            tenant,
            window,
            reply,
        } => {
            if respond(wr, protocol::STATUS_OK, frame.req_id, &reply).is_err() {
                return None;
            }
            Some((tenant, window))
        }
        HelloDecision::Refuse(e) => {
            let _ = respond_err(wr, frame.req_id, &e);
            None
        }
    }
}

fn reader_loop(
    shared: &Arc<Shared>,
    tenant: &Tenant,
    reader: &mut ConnReader,
    mut submitter: SessionSubmitter<'_>,
    in_flight: &Mutex<InFlight>,
    wr: &WriteHalf,
) -> ConnEnd {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            // Already-buffered requests get a typed rejection instead of
            // silence; nothing new is admitted to the store.
            while let Ok(Some(frame)) = reader.try_parse() {
                tenant
                    .counters
                    .shutdown_rejections
                    .fetch_add(1, Ordering::Relaxed);
                let _ = respond_err(wr, frame.req_id, &WireError::ShuttingDown);
            }
            return ConnEnd::Shutdown;
        }
        let frame = match reader.poll() {
            Polled::Frame(frame) => frame,
            Polled::Idle => continue,
            Polled::Eof => return ConnEnd::Eof,
            Polled::Malformed => {
                tenant.counters.bad_frames.fetch_add(1, Ordering::Relaxed);
                let _ = respond_err(wr, 0, &WireError::BadFrame);
                return ConnEnd::Malformed;
            }
        };
        match frame.tag {
            op::GOODBYE => {
                let _ = respond(wr, protocol::STATUS_OK, frame.req_id, &[]);
                return ConnEnd::Goodbye;
            }
            op::READ | op::WRITE | op::CAS => {
                // The state lock is held across submit → map insert so
                // the writer (which takes the same lock before looking a
                // completion up) can never observe a ticket whose
                // request id is not yet recorded.
                let mut state = in_flight.lock().unwrap();
                if !state.ids.insert(frame.req_id) {
                    drop(state);
                    reject_duplicate(tenant, wr, frame.req_id);
                    continue;
                }
                loop {
                    match submit_op(&mut submitter, &frame) {
                        Submitted::Ticket(ticket) => {
                            state.by_ticket.insert(ticket, frame.req_id);
                            break;
                        }
                        Submitted::Rejected(StoreError::Overloaded { .. }) => {
                            // Saturation is backpressure, not an error:
                            // stop reading this connection (the lock is
                            // released so the writer keeps draining) and
                            // retry once the store has breathed.
                            drop(state);
                            tenant
                                .counters
                                .overload_stalls
                                .fetch_add(1, Ordering::Relaxed);
                            thread::sleep(Duration::from_micros(200));
                            if shared.shutdown.load(Ordering::SeqCst) {
                                tenant
                                    .counters
                                    .shutdown_rejections
                                    .fetch_add(1, Ordering::Relaxed);
                                let _ = respond_err(wr, frame.req_id, &WireError::ShuttingDown);
                                return ConnEnd::Shutdown;
                            }
                            state = in_flight.lock().unwrap();
                        }
                        Submitted::Rejected(e) => {
                            state.ids.remove(&frame.req_id);
                            drop(state);
                            tenant.counters.ops_err.fetch_add(1, Ordering::Relaxed);
                            let (tag, payload) = encode_store_error(&e);
                            let _ = respond(wr, tag, frame.req_id, &payload);
                            break;
                        }
                        Submitted::Malformed => {
                            state.ids.remove(&frame.req_id);
                            drop(state);
                            tenant.counters.bad_frames.fetch_add(1, Ordering::Relaxed);
                            let _ = respond_err(wr, frame.req_id, &WireError::BadFrame);
                            break;
                        }
                    }
                }
            }
            op::TAMPER => {
                if !in_flight.lock().unwrap().ids.contains(&frame.req_id) {
                    handle_tamper(tenant, wr, &frame);
                } else {
                    reject_duplicate(tenant, wr, frame.req_id);
                }
            }
            op::HELLO => {
                tenant.counters.bad_frames.fetch_add(1, Ordering::Relaxed);
                let _ = respond_err(wr, frame.req_id, &WireError::BadFrame);
            }
            other => {
                tenant
                    .counters
                    .unknown_opcodes
                    .fetch_add(1, Ordering::Relaxed);
                let _ = respond_err(wr, frame.req_id, &WireError::UnknownOpcode(other));
            }
        }
    }
}

fn reject_duplicate(tenant: &Tenant, wr: &WriteHalf, req_id: u64) {
    tenant
        .counters
        .duplicate_request_ids
        .fetch_add(1, Ordering::Relaxed);
    let _ = respond_err(wr, req_id, &WireError::DuplicateRequestId);
}

pub(crate) enum Submitted {
    Ticket(Ticket),
    Rejected(StoreError),
    Malformed,
}

pub(crate) fn submit_op(submitter: &mut SessionSubmitter<'_>, frame: &Frame) -> Submitted {
    let p = &frame.payload;
    let result = match frame.tag {
        op::READ if p.len() == 8 => {
            let addr = u64::from_le_bytes(p[..8].try_into().unwrap());
            submitter.submit(StoreOp::Read { addr })
        }
        op::WRITE if p.len() == 8 + BLOCK_BYTES => {
            let addr = u64::from_le_bytes(p[..8].try_into().unwrap());
            let data: [u8; BLOCK_BYTES] = p[8..].try_into().unwrap();
            submitter.submit(StoreOp::Write { addr, data })
        }
        op::CAS if p.len() == 8 + 2 * BLOCK_BYTES => {
            let addr = u64::from_le_bytes(p[..8].try_into().unwrap());
            let expected: [u8; BLOCK_BYTES] = p[8..8 + BLOCK_BYTES].try_into().unwrap();
            let new: [u8; BLOCK_BYTES] = p[8 + BLOCK_BYTES..].try_into().unwrap();
            submitter.submit_rmw(addr, move |block| {
                if *block == expected {
                    *block = new;
                }
            })
        }
        _ => return Submitted::Malformed,
    };
    match result {
        Ok(ticket) => Submitted::Ticket(ticket),
        Err(e) => Submitted::Rejected(e),
    }
}

fn handle_tamper(tenant: &Tenant, wr: &WriteHalf, frame: &Frame) {
    let (tag, payload) = exec_tamper(tenant, frame);
    let _ = respond(wr, tag, frame.req_id, &payload);
}

/// Executes a tamper-injection frame synchronously (it bypasses the
/// session pipeline by design) and returns the reply's tag + payload.
/// Counter updates happen here; shared by both serving planes.
pub(crate) fn exec_tamper(tenant: &Tenant, frame: &Frame) -> (u8, Vec<u8>) {
    let p = &frame.payload;
    let bad_frame = |tenant: &Tenant| {
        tenant.counters.bad_frames.fetch_add(1, Ordering::Relaxed);
        encode_server_error(&WireError::BadFrame)
    };
    if p.len() != 13 {
        return bad_frame(tenant);
    }
    let addr = u64::from_le_bytes(p[..8].try_into().unwrap());
    let bit = u32::from_le_bytes(p[8..12].try_into().unwrap());
    let result = match p[12] {
        0 => tenant.store.tamper_data_bit(addr, bit),
        1 => tenant.store.tamper_sideband_bit(addr, bit),
        _ => return bad_frame(tenant),
    };
    match result {
        Ok(()) => {
            tenant.counters.ops_ok.fetch_add(1, Ordering::Relaxed);
            (protocol::STATUS_OK, Vec::new())
        }
        Err(e) => {
            tenant.counters.ops_err.fetch_add(1, Ordering::Relaxed);
            encode_store_error(&e)
        }
    }
}

fn writer_loop(
    mut reaper: ame_store::SessionReaper<'_>,
    in_flight: &Mutex<InFlight>,
    wr: &WriteHalf,
    tenant: &Tenant,
    poll: Duration,
) {
    loop {
        match reaper.recv_timeout(poll) {
            Reaped::Completion(ticket, result) => {
                let req_id = {
                    let mut state = in_flight.lock().unwrap();
                    let req_id = state.by_ticket.remove(&ticket);
                    if let Some(id) = req_id {
                        state.ids.remove(&id);
                    }
                    req_id
                };
                // A ticket with no request id cannot happen (every
                // submitted ticket is registered before the reader moves
                // on), but losing a response silently would be worse
                // than a best-effort id of 0.
                let req_id = req_id.unwrap_or(0);
                match result {
                    Ok(value) => {
                        tenant.counters.ops_ok.fetch_add(1, Ordering::Relaxed);
                        let payload: &[u8] = match &value {
                            StoreValue::Data(b) | StoreValue::Modified(b) => b,
                            StoreValue::Written => &[],
                        };
                        let _ = respond(wr, protocol::STATUS_OK, req_id, payload);
                    }
                    Err(e) => {
                        tenant.counters.ops_err.fetch_add(1, Ordering::Relaxed);
                        let (tag, payload) = encode_store_error(&e);
                        let _ = respond(wr, tag, req_id, &payload);
                    }
                }
            }
            Reaped::TimedOut => {}
            Reaped::Closed => return,
        }
    }
}
