//! The serving loop: a TCP listener, thread-per-connection frame pumps,
//! and per-tenant stores with quotas and telemetry.
//!
//! # Threading model
//!
//! One accept thread plus **two** threads per connection — no async
//! runtime. The connection's *reader* thread parses frames and submits
//! operations through a [`SessionSubmitter`]; a scoped *writer* thread
//! blocks on the paired [`SessionReaper`] and streams completions back
//! as they finish (out of order across shards, FIFO within one — the
//! store's ordering contract travels the wire unchanged). Rejections
//! that never reach the store (malformed frames, duplicate request ids,
//! window overload) are answered inline by the reader through a shared
//! write-half mutex.
//!
//! # Tenancy
//!
//! Every tenant is an independently keyed [`SecureStore`] (see
//! [`EngineConfig::for_tenant`](ame_engine::EngineConfig::for_tenant)):
//! a client authenticates its namespace in `Hello` and can never name
//! another tenant's blocks, and a poisoned shard in one tenant's store
//! never rejects another tenant's traffic. Per-tenant connection and
//! window quotas bound what one tenant can demand of the process, and
//! each tenant's metrics live under `server/tenant<T>/…`.
//!
//! # Shutdown
//!
//! [`Server::shutdown`] flips a flag, wakes the accept loop, and lets
//! every connection drain: readers stop admitting operations (answering
//! [`code::SHUTTING_DOWN`](crate::protocol::code::SHUTTING_DOWN)),
//! writers flush every already-submitted completion — no acked response
//! is lost — and each connection ends with a typed shutting-down notice
//! (request id 0). Only then are the stores shut down through their
//! durable checkpoint path.

use crate::protocol::{
    self, code, encode_server_error, encode_store_error, op, write_frame, Frame, FrameError,
    WireError, DEFAULT_MAX_FRAME, HEADER_BYTES, PROTOCOL_VERSION,
};
use ame_store::{
    Reaped, SecureStore, SessionConfig, SessionSubmitter, ShutdownReport, StoreConfig, StoreError,
    StoreOp, StoreValue, Ticket, BLOCK_BYTES,
};
use ame_telemetry::{Snapshot, StatsRegistry};
use std::collections::{HashMap, HashSet};
use std::io::{self, ErrorKind, Read};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// One tenant hosted by a [`Server`]: an isolated key namespace with
/// its own store and quotas.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Tenant id — the namespace clients name in `Hello`, and the
    /// `tenant` term of the per-shard key derivation.
    pub id: usize,
    /// Store shape for this tenant. The `tenant` field is overwritten
    /// with `id` at bind time, so two specs sharing a template config
    /// still get disjoint keys.
    pub config: StoreConfig,
    /// Durable root for this tenant's snapshots and logs; `None` for a
    /// volatile in-memory store.
    pub persist_dir: Option<PathBuf>,
    /// Connection quota: further `Hello`s are answered
    /// [`code::QUOTA_EXCEEDED`](crate::protocol::code::QUOTA_EXCEEDED).
    pub max_connections: usize,
    /// Ceiling on the per-shard in-flight window a connection may
    /// request; `Hello` grants `min(requested, max_window)`.
    pub max_window: usize,
}

impl TenantSpec {
    /// A tenant with default quotas (64 connections, window ≤ 64).
    #[must_use]
    pub fn new(id: usize, config: StoreConfig) -> Self {
        Self {
            id,
            config,
            persist_dir: None,
            max_connections: 64,
            max_window: 64,
        }
    }
}

/// Server-wide knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// The hosted tenants. Ids must be unique.
    pub tenants: Vec<TenantSpec>,
    /// Ceiling on the frame length prefix; larger prefixes are hostile
    /// and close the connection.
    pub max_frame: u32,
    /// How often blocked reads and reaps wake to check the shutdown
    /// flag. Latency of shutdown, not of requests.
    pub poll_interval: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            tenants: Vec::new(),
            max_frame: DEFAULT_MAX_FRAME,
            poll_interval: Duration::from_millis(50),
        }
    }
}

/// Per-tenant counters, reported under `server/tenant<T>/…`.
#[derive(Debug, Default)]
struct TenantCounters {
    connections_accepted: AtomicU64,
    quota_rejections: AtomicU64,
    ops_ok: AtomicU64,
    ops_err: AtomicU64,
    bad_frames: AtomicU64,
    duplicate_request_ids: AtomicU64,
    unknown_opcodes: AtomicU64,
    shutdown_rejections: AtomicU64,
}

struct Tenant {
    id: usize,
    store: SecureStore,
    connections: AtomicUsize,
    max_connections: usize,
    max_window: usize,
    counters: TenantCounters,
}

/// Server-level counters (events before a connection has a tenant).
#[derive(Debug, Default)]
struct ServerCounters {
    connections_accepted: AtomicU64,
    bad_version: AtomicU64,
    unknown_tenant: AtomicU64,
    pre_hello_failures: AtomicU64,
}

struct Shared {
    tenants: Vec<Tenant>,
    counters: ServerCounters,
    shutdown: AtomicBool,
    max_frame: u32,
    poll_interval: Duration,
    conn_handles: Mutex<Vec<JoinHandle<()>>>,
}

impl Shared {
    fn tenant(&self, id: usize) -> Option<&Tenant> {
        self.tenants.iter().find(|t| t.id == id)
    }
}

/// A running server. Dropping it without calling [`Server::shutdown`]
/// leaks the listener thread; call `shutdown` for an orderly drain and
/// durable checkpoint.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_handle: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server").field("addr", &self.addr).finish()
    }
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port), boots
    /// every tenant's store, and starts accepting connections.
    ///
    /// # Errors
    ///
    /// Propagates bind failures and durable-store open failures.
    ///
    /// # Panics
    ///
    /// Panics if `config.tenants` is empty or contains duplicate ids.
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> io::Result<Self> {
        assert!(
            !config.tenants.is_empty(),
            "a server needs at least one tenant"
        );
        {
            let mut ids: Vec<usize> = config.tenants.iter().map(|t| t.id).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), config.tenants.len(), "tenant ids must be unique");
        }
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let mut tenants = Vec::with_capacity(config.tenants.len());
        for spec in config.tenants {
            let mut store_config = spec.config;
            store_config.tenant = spec.id;
            let store = match &spec.persist_dir {
                Some(dir) => SecureStore::open(dir, store_config)?,
                None => SecureStore::new(store_config),
            };
            tenants.push(Tenant {
                id: spec.id,
                store,
                connections: AtomicUsize::new(0),
                max_connections: spec.max_connections,
                max_window: spec.max_window.max(1),
                counters: TenantCounters::default(),
            });
        }
        let shared = Arc::new(Shared {
            tenants,
            counters: ServerCounters::default(),
            shutdown: AtomicBool::new(false),
            max_frame: config.max_frame,
            poll_interval: config.poll_interval,
            conn_handles: Mutex::new(Vec::new()),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_handle = thread::Builder::new()
            .name("ame-server-accept".into())
            .spawn(move || accept_loop(&listener, &accept_shared))
            .expect("spawn accept thread");
        Ok(Self {
            addr: local,
            shared,
            accept_handle: Some(accept_handle),
        })
    }

    /// The bound address (resolves ephemeral ports).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Snapshot of the full metric tree: per-tenant store metrics under
    /// `server/tenant<T>/store/…` plus serving counters under
    /// `server/tenant<T>/…` and `server/…`.
    #[must_use]
    pub fn telemetry(&self) -> Snapshot {
        let mut reg = StatsRegistry::new();
        let c = &self.shared.counters;
        reg.set_counter(
            "server/connections_accepted",
            c.connections_accepted.load(Ordering::Relaxed),
        );
        reg.set_counter("server/bad_version", c.bad_version.load(Ordering::Relaxed));
        reg.set_counter(
            "server/unknown_tenant",
            c.unknown_tenant.load(Ordering::Relaxed),
        );
        reg.set_counter(
            "server/pre_hello_failures",
            c.pre_hello_failures.load(Ordering::Relaxed),
        );
        for t in &self.shared.tenants {
            let scope = format!("server/tenant{}", t.id);
            t.store.collect(&mut reg, &format!("{scope}/store"));
            reg.set_gauge(
                &format!("{scope}/connections"),
                t.connections.load(Ordering::Relaxed) as f64,
            );
            let tc = &t.counters;
            for (name, v) in [
                ("connections_accepted", &tc.connections_accepted),
                ("quota_rejections", &tc.quota_rejections),
                ("ops_ok", &tc.ops_ok),
                ("ops_err", &tc.ops_err),
                ("bad_frames", &tc.bad_frames),
                ("duplicate_request_ids", &tc.duplicate_request_ids),
                ("unknown_opcodes", &tc.unknown_opcodes),
                ("shutdown_rejections", &tc.shutdown_rejections),
            ] {
                reg.set_counter(&format!("{scope}/{name}"), v.load(Ordering::Relaxed));
            }
        }
        reg.snapshot()
    }

    /// Orderly shutdown: stop accepting, drain every connection's
    /// in-flight window (every submitted operation's response is still
    /// delivered), close connections with a typed shutting-down notice,
    /// then run each tenant store's durable checkpoint.
    ///
    /// Returns `(tenant id, report)` per tenant, in spec order.
    ///
    /// # Panics
    ///
    /// Panics if a serving thread panicked.
    #[must_use]
    pub fn shutdown(mut self) -> Vec<(usize, ShutdownReport)> {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // The accept thread blocks in accept(); a throwaway connection
        // wakes it so it can observe the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_handle.take() {
            handle.join().expect("accept thread panicked");
        }
        let handles = std::mem::take(&mut *self.shared.conn_handles.lock().unwrap());
        for handle in handles {
            handle.join().expect("connection thread panicked");
        }
        let shared = Arc::try_unwrap(self.shared)
            .unwrap_or_else(|_| panic!("serving threads still hold the server state"));
        shared
            .tenants
            .into_iter()
            .map(|t| (t.id, t.store.shutdown()))
            .collect()
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            // The wake-up connection (or a late client): refuse.
            let _ = write_frame(&mut &stream, code::SHUTTING_DOWN, 0, &[]);
            return;
        }
        shared
            .counters
            .connections_accepted
            .fetch_add(1, Ordering::Relaxed);
        let conn_shared = Arc::clone(shared);
        let handle = thread::Builder::new()
            .name("ame-server-conn".into())
            .spawn(move || serve_connection(&conn_shared, stream))
            .expect("spawn connection thread");
        shared.conn_handles.lock().unwrap().push(handle);
    }
}

/// Incremental frame reader: accumulates bytes across read timeouts so
/// a poll deadline in the middle of a frame never desynchronises the
/// stream.
struct ConnReader {
    stream: TcpStream,
    buf: Vec<u8>,
    max_frame: u32,
}

enum Polled {
    Frame(Frame),
    /// Read timeout with no complete frame buffered.
    Idle,
    /// Peer closed (or the transport failed).
    Eof,
    /// Unrecoverable framing violation.
    Malformed,
}

impl ConnReader {
    fn poll(&mut self) -> Polled {
        loop {
            match self.try_parse() {
                Ok(Some(frame)) => return Polled::Frame(frame),
                Ok(None) => {}
                Err(_) => return Polled::Malformed,
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => return Polled::Eof,
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    return Polled::Idle
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return Polled::Eof,
            }
        }
    }

    fn try_parse(&mut self) -> Result<Option<Frame>, FrameError> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(self.buf[..4].try_into().unwrap());
        if len > self.max_frame {
            return Err(FrameError::Oversized {
                len,
                max: self.max_frame,
            });
        }
        if (len as usize) < HEADER_BYTES {
            return Err(FrameError::TooShort { len });
        }
        let total = 4 + len as usize;
        if self.buf.len() < total {
            return Ok(None);
        }
        let tag = self.buf[4];
        let req_id = u64::from_le_bytes(self.buf[5..13].try_into().unwrap());
        let payload = self.buf[13..total].to_vec();
        self.buf.drain(..total);
        Ok(Some(Frame {
            tag,
            req_id,
            payload,
        }))
    }
}

/// Reader/writer shared bookkeeping for one connection: which request
/// id each in-flight ticket answers.
#[derive(Default)]
struct InFlight {
    by_ticket: HashMap<Ticket, u64>,
    ids: HashSet<u64>,
}

type WriteHalf = Arc<Mutex<TcpStream>>;

fn respond(wr: &WriteHalf, tag: u8, req_id: u64, payload: &[u8]) -> io::Result<()> {
    let mut stream = wr.lock().unwrap();
    write_frame(&mut *stream, tag, req_id, payload)
}

fn respond_err(wr: &WriteHalf, req_id: u64, e: &WireError) -> io::Result<()> {
    let (tag, payload) = encode_server_error(e);
    respond(wr, tag, req_id, &payload)
}

/// Why the reader loop ended, deciding the closing notice.
enum ConnEnd {
    Goodbye,
    Eof,
    Shutdown,
    Malformed,
}

fn serve_connection(shared: &Arc<Shared>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.poll_interval));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = ConnReader {
        stream: read_half,
        buf: Vec::new(),
        max_frame: shared.max_frame,
    };
    let wr: WriteHalf = Arc::new(Mutex::new(stream));

    let Some((tenant, window)) = handshake(shared, &mut reader, &wr) else {
        return;
    };
    tenant.connections.fetch_add(1, Ordering::SeqCst);
    tenant
        .counters
        .connections_accepted
        .fetch_add(1, Ordering::Relaxed);

    let (submitter, reaper) = tenant.store.split_session_with(SessionConfig {
        in_flight_window: window,
    });
    let in_flight = Mutex::new(InFlight::default());
    let end = thread::scope(|s| {
        let writer = s.spawn(|| writer_loop(reaper, &in_flight, &wr, tenant, shared.poll_interval));
        let end = reader_loop(shared, tenant, &mut reader, submitter, &in_flight, &wr);
        // `submitter` died with reader_loop; the writer drains the
        // stragglers (acked work is never dropped) and sees Closed.
        writer.join().expect("connection writer panicked");
        end
    });
    if matches!(end, ConnEnd::Shutdown) {
        let _ = respond(&wr, code::SHUTTING_DOWN, 0, &[]);
    }
    tenant.connections.fetch_sub(1, Ordering::SeqCst);
}

/// Runs the `Hello` exchange. `None` means the connection was refused
/// (a typed response was already sent where possible).
fn handshake<'a>(
    shared: &'a Arc<Shared>,
    reader: &mut ConnReader,
    wr: &WriteHalf,
) -> Option<(&'a Tenant, usize)> {
    let frame = loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            let _ = respond_err(wr, 0, &WireError::ShuttingDown);
            return None;
        }
        match reader.poll() {
            Polled::Frame(frame) => break frame,
            Polled::Idle => {}
            Polled::Eof => return None,
            Polled::Malformed => {
                shared
                    .counters
                    .pre_hello_failures
                    .fetch_add(1, Ordering::Relaxed);
                let _ = respond_err(wr, 0, &WireError::BadFrame);
                return None;
            }
        }
    };
    if frame.tag != op::HELLO || frame.payload.len() != 12 {
        shared
            .counters
            .pre_hello_failures
            .fetch_add(1, Ordering::Relaxed);
        let _ = respond_err(wr, frame.req_id, &WireError::BadFrame);
        return None;
    }
    let version = u32::from_le_bytes(frame.payload[0..4].try_into().unwrap());
    let tenant_id = u32::from_le_bytes(frame.payload[4..8].try_into().unwrap());
    let requested = u32::from_le_bytes(frame.payload[8..12].try_into().unwrap());
    if version != PROTOCOL_VERSION {
        shared.counters.bad_version.fetch_add(1, Ordering::Relaxed);
        let _ = respond_err(wr, frame.req_id, &WireError::BadVersion(PROTOCOL_VERSION));
        return None;
    }
    let Some(tenant) = shared.tenant(tenant_id as usize) else {
        shared
            .counters
            .unknown_tenant
            .fetch_add(1, Ordering::Relaxed);
        let _ = respond_err(wr, frame.req_id, &WireError::UnknownTenant(tenant_id));
        return None;
    };
    if tenant.connections.load(Ordering::SeqCst) >= tenant.max_connections {
        tenant
            .counters
            .quota_rejections
            .fetch_add(1, Ordering::Relaxed);
        let _ = respond_err(wr, frame.req_id, &WireError::QuotaExceeded);
        return None;
    }
    let granted = (requested.max(1) as usize).min(tenant.max_window);
    let mut payload = Vec::with_capacity(8);
    payload.extend_from_slice(&(granted as u32).to_le_bytes());
    payload.extend_from_slice(&(tenant.store.shards() as u32).to_le_bytes());
    if respond(wr, protocol::STATUS_OK, frame.req_id, &payload).is_err() {
        return None;
    }
    Some((tenant, granted))
}

fn reader_loop(
    shared: &Arc<Shared>,
    tenant: &Tenant,
    reader: &mut ConnReader,
    mut submitter: SessionSubmitter<'_>,
    in_flight: &Mutex<InFlight>,
    wr: &WriteHalf,
) -> ConnEnd {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            // Already-buffered requests get a typed rejection instead of
            // silence; nothing new is admitted to the store.
            while let Ok(Some(frame)) = reader.try_parse() {
                tenant
                    .counters
                    .shutdown_rejections
                    .fetch_add(1, Ordering::Relaxed);
                let _ = respond_err(wr, frame.req_id, &WireError::ShuttingDown);
            }
            return ConnEnd::Shutdown;
        }
        let frame = match reader.poll() {
            Polled::Frame(frame) => frame,
            Polled::Idle => continue,
            Polled::Eof => return ConnEnd::Eof,
            Polled::Malformed => {
                tenant.counters.bad_frames.fetch_add(1, Ordering::Relaxed);
                let _ = respond_err(wr, 0, &WireError::BadFrame);
                return ConnEnd::Malformed;
            }
        };
        match frame.tag {
            op::GOODBYE => {
                let _ = respond(wr, protocol::STATUS_OK, frame.req_id, &[]);
                return ConnEnd::Goodbye;
            }
            op::READ | op::WRITE | op::CAS => {
                // The state lock is held across submit → map insert so
                // the writer (which takes the same lock before looking a
                // completion up) can never observe a ticket whose
                // request id is not yet recorded.
                let mut state = in_flight.lock().unwrap();
                if !state.ids.insert(frame.req_id) {
                    drop(state);
                    reject_duplicate(tenant, wr, frame.req_id);
                    continue;
                }
                match submit_op(&mut submitter, &frame) {
                    Submitted::Ticket(ticket) => {
                        state.by_ticket.insert(ticket, frame.req_id);
                    }
                    Submitted::Rejected(e) => {
                        state.ids.remove(&frame.req_id);
                        drop(state);
                        tenant.counters.ops_err.fetch_add(1, Ordering::Relaxed);
                        let (tag, payload) = encode_store_error(&e);
                        let _ = respond(wr, tag, frame.req_id, &payload);
                    }
                    Submitted::Malformed => {
                        state.ids.remove(&frame.req_id);
                        drop(state);
                        tenant.counters.bad_frames.fetch_add(1, Ordering::Relaxed);
                        let _ = respond_err(wr, frame.req_id, &WireError::BadFrame);
                    }
                }
            }
            op::TAMPER => {
                if !in_flight.lock().unwrap().ids.contains(&frame.req_id) {
                    handle_tamper(tenant, wr, &frame);
                } else {
                    reject_duplicate(tenant, wr, frame.req_id);
                }
            }
            op::HELLO => {
                tenant.counters.bad_frames.fetch_add(1, Ordering::Relaxed);
                let _ = respond_err(wr, frame.req_id, &WireError::BadFrame);
            }
            other => {
                tenant
                    .counters
                    .unknown_opcodes
                    .fetch_add(1, Ordering::Relaxed);
                let _ = respond_err(wr, frame.req_id, &WireError::UnknownOpcode(other));
            }
        }
    }
}

fn reject_duplicate(tenant: &Tenant, wr: &WriteHalf, req_id: u64) {
    tenant
        .counters
        .duplicate_request_ids
        .fetch_add(1, Ordering::Relaxed);
    let _ = respond_err(wr, req_id, &WireError::DuplicateRequestId);
}

enum Submitted {
    Ticket(Ticket),
    Rejected(StoreError),
    Malformed,
}

fn submit_op(submitter: &mut SessionSubmitter<'_>, frame: &Frame) -> Submitted {
    let p = &frame.payload;
    let result = match frame.tag {
        op::READ if p.len() == 8 => {
            let addr = u64::from_le_bytes(p[..8].try_into().unwrap());
            submitter.submit(StoreOp::Read { addr })
        }
        op::WRITE if p.len() == 8 + BLOCK_BYTES => {
            let addr = u64::from_le_bytes(p[..8].try_into().unwrap());
            let data: [u8; BLOCK_BYTES] = p[8..].try_into().unwrap();
            submitter.submit(StoreOp::Write { addr, data })
        }
        op::CAS if p.len() == 8 + 2 * BLOCK_BYTES => {
            let addr = u64::from_le_bytes(p[..8].try_into().unwrap());
            let expected: [u8; BLOCK_BYTES] = p[8..8 + BLOCK_BYTES].try_into().unwrap();
            let new: [u8; BLOCK_BYTES] = p[8 + BLOCK_BYTES..].try_into().unwrap();
            submitter.submit_rmw(addr, move |block| {
                if *block == expected {
                    *block = new;
                }
            })
        }
        _ => return Submitted::Malformed,
    };
    match result {
        Ok(ticket) => Submitted::Ticket(ticket),
        Err(e) => Submitted::Rejected(e),
    }
}

fn handle_tamper(tenant: &Tenant, wr: &WriteHalf, frame: &Frame) {
    let p = &frame.payload;
    if p.len() != 13 {
        tenant.counters.bad_frames.fetch_add(1, Ordering::Relaxed);
        let _ = respond_err(wr, frame.req_id, &WireError::BadFrame);
        return;
    }
    let addr = u64::from_le_bytes(p[..8].try_into().unwrap());
    let bit = u32::from_le_bytes(p[8..12].try_into().unwrap());
    let result = match p[12] {
        0 => tenant.store.tamper_data_bit(addr, bit),
        1 => tenant.store.tamper_sideband_bit(addr, bit),
        _ => {
            tenant.counters.bad_frames.fetch_add(1, Ordering::Relaxed);
            let _ = respond_err(wr, frame.req_id, &WireError::BadFrame);
            return;
        }
    };
    match result {
        Ok(()) => {
            tenant.counters.ops_ok.fetch_add(1, Ordering::Relaxed);
            let _ = respond(wr, protocol::STATUS_OK, frame.req_id, &[]);
        }
        Err(e) => {
            tenant.counters.ops_err.fetch_add(1, Ordering::Relaxed);
            let (tag, payload) = encode_store_error(&e);
            let _ = respond(wr, tag, frame.req_id, &payload);
        }
    }
}

fn writer_loop(
    mut reaper: ame_store::SessionReaper<'_>,
    in_flight: &Mutex<InFlight>,
    wr: &WriteHalf,
    tenant: &Tenant,
    poll: Duration,
) {
    loop {
        match reaper.recv_timeout(poll) {
            Reaped::Completion(ticket, result) => {
                let req_id = {
                    let mut state = in_flight.lock().unwrap();
                    let req_id = state.by_ticket.remove(&ticket);
                    if let Some(id) = req_id {
                        state.ids.remove(&id);
                    }
                    req_id
                };
                // A ticket with no request id cannot happen (every
                // submitted ticket is registered before the reader moves
                // on), but losing a response silently would be worse
                // than a best-effort id of 0.
                let req_id = req_id.unwrap_or(0);
                match result {
                    Ok(value) => {
                        tenant.counters.ops_ok.fetch_add(1, Ordering::Relaxed);
                        let payload: &[u8] = match &value {
                            StoreValue::Data(b) | StoreValue::Modified(b) => b,
                            StoreValue::Written => &[],
                        };
                        let _ = respond(wr, protocol::STATUS_OK, req_id, payload);
                    }
                    Err(e) => {
                        tenant.counters.ops_err.fetch_add(1, Ordering::Relaxed);
                        let (tag, payload) = encode_store_error(&e);
                        let _ = respond(wr, tag, req_id, &payload);
                    }
                }
            }
            Reaped::TimedOut => {}
            Reaped::Closed => return,
        }
    }
}
