//! Event-driven connection serving: a fixed pool of epoll loops.
//!
//! The threaded plane in [`crate::server`] spends two OS threads per
//! connection; past a few hundred clients the scheduler, stacks, and
//! context switches dominate. This module serves the same wire protocol
//! from a **fixed** pool of event-loop threads: every connection is a
//! nonblocking state machine owned by exactly one loop, and the loop
//! blocks in a single `epoll_wait` over all of its sockets *plus* one
//! eventfd per open session (see
//! [`SecureStore::split_session_with_wake`](ame_store::SecureStore::split_session_with_wake))
//! so shard workers can rouse it the moment a completion lands. No
//! thread ever blocks on a socket or a channel.
//!
//! # Connection state machine
//!
//! ```text
//!            frame ≠ HELLO / refusal
//! Handshake ────────────────────────────► Flush ──► closed
//!     │ HELLO granted                       ▲
//!     ▼                                     │ window empty
//!   Open (submitter + reaper) ──────────────┘
//!     GOODBYE/EOF/shutdown: drop submitter, drain in-flight
//! ```
//!
//! Reads accumulate into a per-connection buffer (partial frames are
//! normal — a frame may arrive one byte at a time); responses accumulate
//! into a write buffer flushed until `EWOULDBLOCK`, with `EPOLLOUT`
//! interest registered only while that buffer is non-empty. Both buffers
//! are bounded: once the write buffer passes [`WBUF_STALL`] the
//! connection stops parsing (and stops reading — `EPOLLIN` interest
//! drops, so TCP pushes back) until the peer drains its responses. A
//! stalled or hostile peer therefore costs its own *bounded* buffers,
//! never a thread and never unbounded server memory — the threaded
//! plane gets the same property from its blocking writes.
//!
//! Store saturation (`StoreError::Overloaded`, from the shared shard
//! queue or the session window) is **backpressure, not an error**: the
//! refused op is parked, `EPOLLIN` interest drops so TCP pushes back on
//! the peer, and every loop tick retries parked ops until the store
//! breathes — a valid operation is never bounced. The threaded plane
//! applies the same policy by sleeping its reader thread.
//!
//! # Wakeup path
//!
//! Shard workers ring the session's eventfd *after* pushing each
//! completion. The loop handles a wake event by draining the eventfd
//! **first** and then reaping everything
//! ([`SessionReaper::try_recv_all`](ame_store::SessionReaper::try_recv_all)):
//! a completion that lands between the reap and the next `epoll_wait`
//! re-rings the fd, so nothing is ever stranded.
//!
//! Admission (HELLO policy), operation decode, duplicate-id checks, and
//! the shutdown-drain contract are all shared with the threaded plane —
//! the two modes cannot drift apart because they run the same functions.

use crate::protocol::{
    self, code, encode_server_error, encode_store_error, op, write_frame, Frame, WireError,
};
use crate::server::{
    evaluate_hello, exec_tamper, submit_op, try_parse_frame, ConnEnd, HelloDecision, Shared,
    Submitted, Tenant,
};
use crate::sys::{Epoll, EpollEvent, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
use ame_store::{
    SessionConfig, SessionReaper, SessionSubmitter, StoreError, StoreValue, Ticket, WakeFd,
};
use std::collections::{HashMap, HashSet};
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Token for the loop's own injection eventfd. Connection tokens are
/// `id << 1 | {0 socket, 1 session wake}` with ids counting from zero,
/// so the all-ones token can never collide.
const INJECT_TOKEN: u64 = u64::MAX;

/// Readiness events fetched per `epoll_wait` call.
const EVENT_BATCH: usize = 256;

/// Socket read granularity.
const READ_CHUNK: usize = 4096;

/// Fairness bound: chunks read per readiness event before yielding to
/// other connections (level-triggered epoll re-reports the remainder).
const MAX_CHUNKS_PER_EVENT: usize = 16;

/// Write-buffer occupancy past which a connection stops admitting input:
/// parsing pauses and `EPOLLIN` interest drops until the peer reads its
/// responses down. Without this a peer that streams frames (each earning
/// a response) but never reads its socket grows `wbuf` without limit —
/// the threaded plane's blocking writes gave it natural backpressure,
/// the reactor must impose the same bound explicitly. A single oversized
/// response may overshoot the threshold; the stall then holds until the
/// flush brings it back under.
const WBUF_STALL: usize = 256 * 1024;

/// How long a draining reactor waits for peers to read their final
/// responses before force-closing them. Without a deadline, one peer
/// that never reads (write buffer full, socket alive) keeps its
/// connection — and therefore `Server::close` — hanging forever.
const DRAIN_GRACE: Duration = Duration::from_secs(5);

/// The accept thread's handle on the reactor: one injector per loop.
pub(crate) struct ReactorPool {
    injectors: Vec<Injector>,
    next: AtomicUsize,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

struct Injector {
    tx: Sender<TcpStream>,
    wake: Arc<WakeFd>,
}

/// Everything one event-loop thread owns, built before the thread
/// spawns so a host without epoll/eventfd fails the whole mode up
/// front instead of half-starting.
pub(crate) struct ReactorSeed {
    rx: Receiver<TcpStream>,
    wake: Arc<WakeFd>,
    epoll: Epoll,
}

/// Builds the pool plus one seed per loop. `None` means the host cannot
/// run a reactor (no epoll or no eventfd) — the caller falls back to
/// threaded serving and records the fallback.
pub(crate) fn prepare(threads: usize) -> Option<(ReactorPool, Vec<ReactorSeed>)> {
    let mut injectors = Vec::with_capacity(threads);
    let mut seeds = Vec::with_capacity(threads);
    for _ in 0..threads {
        let epoll = Epoll::new()?;
        let wake = Arc::new(WakeFd::new()?);
        if !epoll.add(wake.raw_fd(), EPOLLIN, INJECT_TOKEN) {
            return None;
        }
        let (tx, rx) = channel();
        injectors.push(Injector {
            tx,
            wake: Arc::clone(&wake),
        });
        seeds.push(ReactorSeed { rx, wake, epoll });
    }
    Some((
        ReactorPool {
            injectors,
            next: AtomicUsize::new(0),
            handles: Mutex::new(Vec::new()),
        },
        seeds,
    ))
}

impl ReactorPool {
    /// Event-loop thread count.
    pub(crate) fn threads(&self) -> usize {
        self.injectors.len()
    }

    pub(crate) fn push_handle(&self, handle: JoinHandle<()>) {
        self.handles.lock().unwrap().push(handle);
    }

    pub(crate) fn take_handles(&self) -> Vec<JoinHandle<()>> {
        std::mem::take(&mut *self.handles.lock().unwrap())
    }

    /// Hands an accepted connection to the next loop, round-robin.
    pub(crate) fn dispatch(&self, stream: TcpStream) {
        let i = self.next.fetch_add(1, Ordering::Relaxed) % self.injectors.len();
        let injector = &self.injectors[i];
        if injector.tx.send(stream).is_ok() {
            injector.wake.signal();
        }
    }

    /// Rouses every loop (shutdown: they re-check the flag on wake).
    pub(crate) fn wake_all(&self) {
        for injector in &self.injectors {
            injector.wake.signal();
        }
    }
}

/// Entry point of one `ame-server-reactor` thread.
pub(crate) fn reactor_thread(shared: &Arc<Shared>, seed: ReactorSeed) {
    let ReactorSeed { rx, wake, epoll } = seed;
    reactor_loop(shared, &rx, &wake, &epoll);
}

/// An open session: the store-facing half of one granted connection.
struct Pipe<'a> {
    tenant: &'a Tenant,
    /// `Some` while admitting; dropped (→ `None`) to begin draining —
    /// the store sees the pipeline close, in-flight completions still
    /// arrive.
    submitter: Option<SessionSubmitter<'a>>,
    reaper: SessionReaper<'a>,
    by_ticket: HashMap<Ticket, u64>,
    ids: HashSet<u64>,
    /// The session eventfd registered in the loop's interest set.
    wake_fd: i32,
}

enum State<'a> {
    /// Waiting for a well-formed HELLO.
    Handshake,
    /// Granted: streaming operations through a session.
    Open(Pipe<'a>),
    /// Session over (or never granted): write buffer drains, then close.
    Flush,
}

/// One connection owned by one event loop. No locks: a connection is
/// only ever touched by its owning thread.
struct Conn<'a> {
    stream: TcpStream,
    id: u64,
    /// Accumulated unparsed input (partial frames live here).
    rbuf: Vec<u8>,
    /// Responses not yet accepted by the socket.
    wbuf: Vec<u8>,
    /// The interest mask currently registered for the socket.
    mask: u32,
    state: State<'a>,
    /// A dup-checked operation the store refused with `Overloaded`.
    /// Backpressure, not an error: parsing and `EPOLLIN` interest stop
    /// (TCP pushes back on the peer) until a retry lands it.
    stalled: Option<Frame>,
    /// `Some` once the connection stopped admitting frames; the variant
    /// decides the closing notice (only `Shutdown` sends one).
    end: Option<ConnEnd>,
    eof: bool,
    peer_gone: bool,
    closed: bool,
}

#[cfg(unix)]
fn raw_fd(stream: &TcpStream) -> i32 {
    use std::os::fd::AsRawFd;
    stream.as_raw_fd()
}

#[cfg(not(unix))]
fn raw_fd(_stream: &TcpStream) -> i32 {
    // Unreachable in practice: `prepare` already failed on non-unix
    // hosts, so no reactor loop ever runs.
    -1
}

fn reactor_loop<'a>(
    shared: &'a Shared,
    rx: &Receiver<TcpStream>,
    inject_wake: &WakeFd,
    epoll: &Epoll,
) {
    let mut conns: HashMap<u64, Conn<'a>> = HashMap::new();
    let mut next_id: u64 = 0;
    let mut events = vec![EpollEvent::default(); EVENT_BATCH];
    let mut draining = false;
    let mut drain_deadline: Option<Instant> = None;
    loop {
        let n = match epoll.wait(&mut events, timeout_ms(shared.poll_interval)) {
            Ok(n) => n,
            Err(errno) => {
                // A fatal wait error (EBADF, EINVAL, …) never clears on
                // retry: no readiness would ever be observed again, so
                // every connection this loop owns is already dead in all
                // but name. Fail loudly — dropped streams reset, which a
                // client can detect; a silent poll-interval spin it
                // cannot. Dropping `conns` closes every socket and
                // releases every session (safe mid-flight).
                eprintln!(
                    "ame-server: reactor epoll_wait failed (errno {errno}); \
                     dropping {} connections and exiting the loop",
                    conns.len()
                );
                return;
            }
        };
        let ready: Vec<(u64, u32)> = events[..n]
            .iter()
            .map(|e| (e.token(), e.events()))
            .collect();

        if ready.iter().any(|&(token, _)| token == INJECT_TOKEN) {
            inject_wake.drain();
        }
        // Drain the injection queue every iteration (wake signals
        // coalesce, so one event may cover many handoffs).
        while let Ok(stream) = rx.try_recv() {
            if shared.shutdown.load(Ordering::SeqCst) {
                let _ = write_frame(&mut &stream, code::SHUTTING_DOWN, 0, &[]);
                continue;
            }
            admit(epoll, &mut conns, &mut next_id, stream);
        }

        if shared.shutdown.load(Ordering::SeqCst) && !draining {
            draining = true;
            drain_deadline = Some(Instant::now() + DRAIN_GRACE);
            for conn in conns.values_mut() {
                begin_shutdown(conn, shared.max_frame);
                // Idle connections get no further events; push them
                // through notice + flush + close right now.
                advance(conn, shared, epoll);
            }
        }

        for &(token, evs) in &ready {
            if token == INJECT_TOKEN {
                continue;
            }
            let id = token >> 1;
            let Some(conn) = conns.get_mut(&id) else {
                // Stale event for a connection closed earlier in this
                // batch (tokens are ids, never reused).
                continue;
            };
            if conn.closed {
                continue;
            }
            if token & 1 == 1 {
                on_session_wake(conn);
            } else {
                on_socket(conn, evs, shared, epoll);
            }
            advance(conn, shared, epoll);
        }

        // Backpressure retry: a stall caused by *other* sessions
        // saturating a shard queue never rings this connection's
        // eventfd, so parked ops are retried every tick (the loop always
        // returns within `poll_interval`, and runs hot under the very
        // load that causes stalls).
        for conn in conns.values_mut() {
            if conn.closed || conn.stalled.is_none() {
                continue;
            }
            retry_stalled(conn, shared, epoll);
            advance(conn, shared, epoll);
        }

        // Drain deadline: past the grace period, peers that still have
        // not read their final responses (or whose in-flight completions
        // somehow have not landed) are force-closed so shutdown cannot
        // hang on one unread socket. Everything acked *and readable* was
        // already delivered; what remains is undeliverable by the peer's
        // own choice.
        if draining && drain_deadline.is_some_and(|d| Instant::now() >= d) {
            for conn in conns.values_mut() {
                force_close(conn, epoll);
            }
        }

        conns.retain(|_, conn| !conn.closed);

        if draining && conns.is_empty() {
            // Late handoffs raced the shutdown flag: refuse them.
            while let Ok(stream) = rx.try_recv() {
                let _ = write_frame(&mut &stream, code::SHUTTING_DOWN, 0, &[]);
            }
            return;
        }
    }
}

fn timeout_ms(poll_interval: Duration) -> i32 {
    poll_interval.as_millis().clamp(1, i32::MAX as u128) as i32
}

fn admit<'a>(
    epoll: &Epoll,
    conns: &mut HashMap<u64, Conn<'a>>,
    next_id: &mut u64,
    stream: TcpStream,
) {
    let _ = stream.set_nodelay(true);
    if stream.set_nonblocking(true).is_err() {
        return;
    }
    let id = *next_id;
    *next_id += 1;
    if !epoll.add(raw_fd(&stream), EPOLLIN | EPOLLRDHUP, id << 1) {
        return; // dropping the stream closes it
    }
    conns.insert(
        id,
        Conn {
            stream,
            id,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            mask: EPOLLIN | EPOLLRDHUP,
            state: State::Handshake,
            stalled: None,
            end: None,
            eof: false,
            peer_gone: false,
            closed: false,
        },
    );
}

/// Appends one frame to a connection's write buffer (a `Vec` never
/// fails as a writer).
fn queue_frame(wbuf: &mut Vec<u8>, tag: u8, req_id: u64, payload: &[u8]) {
    let _ = write_frame(wbuf, tag, req_id, payload);
}

fn queue_wire_err(wbuf: &mut Vec<u8>, req_id: u64, e: &WireError) {
    let (tag, payload) = encode_server_error(e);
    queue_frame(wbuf, tag, req_id, &payload);
}

fn on_socket<'a>(conn: &mut Conn<'a>, evs: u32, shared: &'a Shared, epoll: &Epoll) {
    if evs & (EPOLLERR | EPOLLHUP) != 0 {
        conn.peer_gone = true;
    }
    if evs & (EPOLLIN | EPOLLRDHUP) != 0 {
        read_some(conn);
        if conn.end.is_none() {
            process_frames(conn, shared, epoll);
        } else {
            // Draining: bytes are read only to notice EOF.
            conn.rbuf.clear();
        }
    }
    if evs & EPOLLOUT != 0 {
        flush_wbuf(conn);
    }
}

fn read_some(conn: &mut Conn<'_>) {
    for _ in 0..MAX_CHUNKS_PER_EVENT {
        let mut chunk = [0u8; READ_CHUNK];
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                conn.eof = true;
                return;
            }
            Ok(n) => {
                conn.rbuf.extend_from_slice(&chunk[..n]);
                if n < READ_CHUNK {
                    return;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => {
                conn.eof = true;
                conn.peer_gone = true;
                return;
            }
        }
    }
}

fn flush_wbuf(conn: &mut Conn<'_>) {
    while !conn.wbuf.is_empty() {
        match conn.stream.write(&conn.wbuf) {
            Ok(0) => {
                conn.peer_gone = true;
                break;
            }
            Ok(n) => {
                conn.wbuf.drain(..n);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => {
                conn.peer_gone = true;
                break;
            }
        }
    }
    if conn.peer_gone {
        // Nothing queued can ever be delivered.
        conn.wbuf.clear();
    }
}

fn process_frames<'a>(conn: &mut Conn<'a>, shared: &'a Shared, epoll: &Epoll) {
    // The `wbuf` bound is backpressure on a peer that sends but never
    // reads: parsing pauses here and `advance` drops `EPOLLIN` interest;
    // once a flush brings the buffer back under the threshold, `advance`
    // resumes parsing whatever input accumulated behind the stall.
    while conn.end.is_none() && conn.stalled.is_none() && conn.wbuf.len() < WBUF_STALL {
        let frame = match try_parse_frame(&mut conn.rbuf, shared.max_frame) {
            Ok(Some(frame)) => frame,
            Ok(None) => break,
            Err(_) => {
                match &conn.state {
                    State::Open(pipe) => {
                        pipe.tenant
                            .counters
                            .bad_frames
                            .fetch_add(1, Ordering::Relaxed);
                    }
                    _ => {
                        shared
                            .counters
                            .pre_hello_failures
                            .fetch_add(1, Ordering::Relaxed);
                    }
                }
                queue_wire_err(&mut conn.wbuf, 0, &WireError::BadFrame);
                begin_drain(conn, ConnEnd::Malformed);
                break;
            }
        };
        if let Some(why) = handle_frame(conn, &frame, shared, epoll) {
            begin_drain(conn, why);
        }
    }
}

/// Dispatches one well-formed frame. `Some(end)` asks the caller to
/// stop admitting and begin the drain.
fn handle_frame<'a>(
    conn: &mut Conn<'a>,
    frame: &Frame,
    shared: &'a Shared,
    epoll: &Epoll,
) -> Option<ConnEnd> {
    match &conn.state {
        State::Handshake => handle_hello(conn, frame, shared, epoll),
        State::Open(_) => handle_op(conn, frame),
        State::Flush => None,
    }
}

fn handle_hello<'a>(
    conn: &mut Conn<'a>,
    frame: &Frame,
    shared: &'a Shared,
    epoll: &Epoll,
) -> Option<ConnEnd> {
    match evaluate_hello(shared, frame) {
        HelloDecision::Grant {
            tenant,
            window,
            reply,
        } => {
            let (submitter, reaper) = tenant.store.split_session_with_wake(SessionConfig {
                in_flight_window: window,
            });
            let Some(wake_fd) = reaper.wake_fd() else {
                // No eventfd for this session (fd exhaustion): the loop
                // would never learn about completions, so refuse rather
                // than serve a half-working connection.
                tenant
                    .counters
                    .quota_rejections
                    .fetch_add(1, Ordering::Relaxed);
                queue_wire_err(&mut conn.wbuf, frame.req_id, &WireError::QuotaExceeded);
                return Some(ConnEnd::Goodbye);
            };
            if !epoll.add(wake_fd, EPOLLIN, (conn.id << 1) | 1) {
                tenant
                    .counters
                    .quota_rejections
                    .fetch_add(1, Ordering::Relaxed);
                queue_wire_err(&mut conn.wbuf, frame.req_id, &WireError::QuotaExceeded);
                return Some(ConnEnd::Goodbye);
            }
            tenant.connections.fetch_add(1, Ordering::SeqCst);
            tenant
                .counters
                .connections_accepted
                .fetch_add(1, Ordering::Relaxed);
            queue_frame(&mut conn.wbuf, protocol::STATUS_OK, frame.req_id, &reply);
            conn.state = State::Open(Pipe {
                tenant,
                submitter: Some(submitter),
                reaper,
                by_ticket: HashMap::new(),
                ids: HashSet::new(),
                wake_fd,
            });
            None
        }
        HelloDecision::Refuse(e) => {
            queue_wire_err(&mut conn.wbuf, frame.req_id, &e);
            Some(ConnEnd::Goodbye)
        }
    }
}

/// The reactor's port of the threaded `reader_loop` dispatch — same
/// opcodes, same counters, same duplicate-id rules, but rejections and
/// synchronous replies land in the write buffer instead of a socket.
fn handle_op(conn: &mut Conn<'_>, frame: &Frame) -> Option<ConnEnd> {
    let Conn {
        ref mut wbuf,
        ref mut state,
        ref mut stalled,
        ..
    } = *conn;
    let State::Open(pipe) = state else {
        return None;
    };
    match frame.tag {
        op::GOODBYE => {
            queue_frame(wbuf, protocol::STATUS_OK, frame.req_id, &[]);
            Some(ConnEnd::Goodbye)
        }
        op::READ | op::WRITE | op::CAS => {
            if !pipe.ids.insert(frame.req_id) {
                pipe.tenant
                    .counters
                    .duplicate_request_ids
                    .fetch_add(1, Ordering::Relaxed);
                queue_wire_err(wbuf, frame.req_id, &WireError::DuplicateRequestId);
                return None;
            }
            *stalled = submit_checked(pipe, wbuf, frame.clone());
            None
        }
        op::TAMPER => {
            if pipe.ids.contains(&frame.req_id) {
                pipe.tenant
                    .counters
                    .duplicate_request_ids
                    .fetch_add(1, Ordering::Relaxed);
                queue_wire_err(wbuf, frame.req_id, &WireError::DuplicateRequestId);
            } else {
                let (tag, payload) = exec_tamper(pipe.tenant, frame);
                queue_frame(wbuf, tag, frame.req_id, &payload);
            }
            None
        }
        op::HELLO => {
            pipe.tenant
                .counters
                .bad_frames
                .fetch_add(1, Ordering::Relaxed);
            queue_wire_err(wbuf, frame.req_id, &WireError::BadFrame);
            None
        }
        other => {
            pipe.tenant
                .counters
                .unknown_opcodes
                .fetch_add(1, Ordering::Relaxed);
            queue_wire_err(wbuf, frame.req_id, &WireError::UnknownOpcode(other));
            None
        }
    }
}

/// Submits one already-dup-checked operation frame. Returns the frame
/// back when the store is saturated ([`StoreError::Overloaded`] covers
/// both the shared shard queue and the session window): the caller
/// parks it, stops reading the connection, and retries on the next loop
/// tick — backpressure instead of bouncing a valid op.
fn submit_checked(pipe: &mut Pipe<'_>, wbuf: &mut Vec<u8>, frame: Frame) -> Option<Frame> {
    let Some(submitter) = pipe.submitter.as_mut() else {
        // Unreachable: an open pipe without a submitter means the
        // connection is draining, and draining connections never reach
        // frame dispatch (nor retry stalls — the drain clears them).
        return None;
    };
    match submit_op(submitter, &frame) {
        Submitted::Ticket(ticket) => {
            pipe.by_ticket.insert(ticket, frame.req_id);
            None
        }
        Submitted::Rejected(StoreError::Overloaded { .. }) => {
            pipe.tenant
                .counters
                .overload_stalls
                .fetch_add(1, Ordering::Relaxed);
            Some(frame)
        }
        Submitted::Rejected(e) => {
            pipe.ids.remove(&frame.req_id);
            pipe.tenant.counters.ops_err.fetch_add(1, Ordering::Relaxed);
            let (tag, payload) = encode_store_error(&e);
            queue_frame(wbuf, tag, frame.req_id, &payload);
            None
        }
        Submitted::Malformed => {
            pipe.ids.remove(&frame.req_id);
            pipe.tenant
                .counters
                .bad_frames
                .fetch_add(1, Ordering::Relaxed);
            queue_wire_err(wbuf, frame.req_id, &WireError::BadFrame);
            None
        }
    }
}

/// Retries a parked operation; on success, resumes parsing whatever
/// buffered input accumulated behind it.
fn retry_stalled<'a>(conn: &mut Conn<'a>, shared: &'a Shared, epoll: &Epoll) {
    let Some(frame) = conn.stalled.take() else {
        return;
    };
    {
        let Conn {
            ref mut wbuf,
            ref mut state,
            ref mut stalled,
            ..
        } = *conn;
        if let State::Open(pipe) = state {
            *stalled = submit_checked(pipe, wbuf, frame);
        }
        // Any other state: the connection began draining; the parked op
        // was never submitted or acked, and its peer is past caring.
    }
    if conn.stalled.is_none() && conn.end.is_none() {
        process_frames(conn, shared, epoll);
    }
}

/// Session eventfd fired: drain it *first*, then reap everything. A
/// completion that lands after the reap re-rings the fd, so the
/// drain-then-reap order can never strand a response.
fn on_session_wake(conn: &mut Conn<'_>) {
    let Conn {
        ref mut wbuf,
        ref mut state,
        ..
    } = *conn;
    let State::Open(pipe) = state else {
        return;
    };
    pipe.reaper.drain_wake();
    for (ticket, result) in pipe.reaper.try_recv_all() {
        let req_id = pipe.by_ticket.remove(&ticket);
        if let Some(id) = req_id {
            pipe.ids.remove(&id);
        }
        // Same rationale as the threaded writer: an unknown ticket
        // cannot happen, but a best-effort id of 0 beats losing a
        // response silently.
        let req_id = req_id.unwrap_or(0);
        match result {
            Ok(value) => {
                pipe.tenant.counters.ops_ok.fetch_add(1, Ordering::Relaxed);
                let payload: &[u8] = match &value {
                    StoreValue::Data(b) | StoreValue::Modified(b) => b,
                    StoreValue::Written => &[],
                };
                queue_frame(wbuf, protocol::STATUS_OK, req_id, payload);
            }
            Err(e) => {
                pipe.tenant.counters.ops_err.fetch_add(1, Ordering::Relaxed);
                let (tag, payload) = encode_store_error(&e);
                queue_frame(wbuf, tag, req_id, &payload);
            }
        }
    }
}

/// Stops admitting frames; in-flight operations still complete (acked
/// work is never dropped) and their responses still flush.
fn begin_drain(conn: &mut Conn<'_>, why: ConnEnd) {
    if conn.end.is_none() {
        conn.end = Some(why);
    }
    conn.rbuf.clear();
    // A parked op was never submitted and never acked; the drain
    // contract ("acked work is never dropped") does not cover it.
    conn.stalled = None;
    match &mut conn.state {
        State::Open(pipe) => {
            pipe.submitter = None;
        }
        State::Handshake => {
            conn.state = State::Flush;
        }
        State::Flush => {}
    }
}

/// The reactor's port of the threaded shutdown contract: buffered
/// frames get typed rejections (never silence), nothing new is
/// admitted, in-flight completions drain, and the connection ends with
/// a shutting-down notice.
fn begin_shutdown(conn: &mut Conn<'_>, max_frame: u32) {
    if conn.end.is_some() {
        // Already ending for another reason; that drain continues.
        return;
    }
    let Conn {
        ref mut rbuf,
        ref mut wbuf,
        ref mut state,
        ref mut end,
        ref mut stalled,
        ..
    } = *conn;
    match state {
        State::Handshake => {
            queue_wire_err(wbuf, 0, &WireError::ShuttingDown);
            *end = Some(ConnEnd::Goodbye);
            *state = State::Flush;
        }
        State::Open(pipe) => {
            // A parked op is a buffered frame like any other: typed
            // rejection, never silence.
            if let Some(frame) = stalled.take() {
                pipe.tenant
                    .counters
                    .shutdown_rejections
                    .fetch_add(1, Ordering::Relaxed);
                queue_wire_err(wbuf, frame.req_id, &WireError::ShuttingDown);
            }
            while let Ok(Some(frame)) = try_parse_frame(rbuf, max_frame) {
                pipe.tenant
                    .counters
                    .shutdown_rejections
                    .fetch_add(1, Ordering::Relaxed);
                queue_wire_err(wbuf, frame.req_id, &WireError::ShuttingDown);
            }
            pipe.submitter = None;
            *end = Some(ConnEnd::Shutdown);
        }
        State::Flush => {}
    }
    rbuf.clear();
}

/// Runs the connection's state transitions after any event: pipe-drain
/// completion, write flushing, `EPOLLOUT` interest, and final close.
fn advance<'a>(conn: &mut Conn<'a>, shared: &'a Shared, epoll: &Epoll) {
    // A half-closed peer may still be reading: give a parked op its
    // retries before draining. A gone peer can't receive the response
    // anyway, so its stall is dropped with the connection.
    if (conn.eof || conn.peer_gone) && conn.end.is_none() {
        if conn.peer_gone {
            conn.stalled = None;
        }
        if conn.stalled.is_none() {
            begin_drain(conn, ConnEnd::Eof);
        }
    }
    // A wbuf-bounded stall ends when the peer reads responses down:
    // resume parsing the input that accumulated behind it.
    if conn.end.is_none()
        && conn.stalled.is_none()
        && conn.wbuf.len() < WBUF_STALL
        && !conn.rbuf.is_empty()
    {
        process_frames(conn, shared, epoll);
    }
    // An open pipe whose submitter is gone and whose window is empty
    // has delivered everything it ever acked: retire the session.
    let finished = matches!(
        &conn.state,
        State::Open(pipe) if pipe.submitter.is_none() && pipe.by_ticket.is_empty()
    );
    if finished {
        if matches!(conn.end, Some(ConnEnd::Shutdown)) {
            queue_frame(&mut conn.wbuf, code::SHUTTING_DOWN, 0, &[]);
        }
        if let State::Open(pipe) = std::mem::replace(&mut conn.state, State::Flush) {
            epoll.del(pipe.wake_fd);
            pipe.tenant.connections.fetch_sub(1, Ordering::SeqCst);
            // `pipe` drops here: the reaper releases the session and
            // (with the last Arc) closes the eventfd.
        }
    }
    flush_wbuf(conn);
    if matches!(conn.state, State::Flush)
        && conn.end.is_some()
        && (conn.wbuf.is_empty() || conn.peer_gone)
    {
        epoll.del(raw_fd(&conn.stream));
        conn.closed = true;
        return;
    }
    // Interest tracks state: `EPOLLOUT` only while responses wait,
    // `EPOLLIN` only while neither a parked op nor a full write buffer
    // is stalling intake (either way the kernel buffer fills and TCP
    // pushes back on the peer; `EPOLLRDHUP` still reports a vanishing
    // one).
    let intake_open = conn.stalled.is_none() && conn.wbuf.len() < WBUF_STALL;
    let want = EPOLLRDHUP
        | if intake_open { EPOLLIN } else { 0 }
        | if conn.wbuf.is_empty() { 0 } else { EPOLLOUT };
    if want != conn.mask && epoll.modify(raw_fd(&conn.stream), want, conn.id << 1) {
        conn.mask = want;
    }
}

/// Drain-deadline enforcement: unconditionally ends a connection whose
/// peer has not drained its responses within the shutdown grace period.
/// Undelivered bytes are dropped — by this point they are undeliverable
/// by the peer's own refusal to read — and the session (if still open)
/// is released, which is safe even with completions in flight.
fn force_close(conn: &mut Conn<'_>, epoll: &Epoll) {
    if conn.closed {
        return;
    }
    conn.stalled = None;
    conn.wbuf.clear();
    if let State::Open(pipe) = std::mem::replace(&mut conn.state, State::Flush) {
        epoll.del(pipe.wake_fd);
        pipe.tenant.connections.fetch_sub(1, Ordering::SeqCst);
    }
    if conn.end.is_none() {
        conn.end = Some(ConnEnd::Shutdown);
    }
    epoll.del(raw_fd(&conn.stream));
    conn.closed = true;
}
