//! Quarantined `epoll(7)` binding for the connection reactor.
//!
//! Same construction rules as `ame-store`'s `affinity`/`wake` modules:
//! the workspace links no libc crate, so the four syscalls the reactor
//! needs are declared by hand and wrapped in a safe [`Epoll`] handle.
//! Everything else in the server stays under `#![deny(unsafe_code)]`.
//!
//! Failure is never silent but always *detectable up front*:
//! [`Epoll::new`] returns `None` on hosts without epoll (any non-Linux
//! OS, or fd exhaustion), and the server reacts by falling back to
//! thread-per-connection serving with a recorded telemetry gauge —
//! the reactor is an acceleration, not a correctness requirement.

#![allow(unsafe_code)]

/// Readable (`EPOLLIN`).
pub(crate) const EPOLLIN: u32 = 0x001;
/// Writable (`EPOLLOUT`).
pub(crate) const EPOLLOUT: u32 = 0x004;
/// Error condition (`EPOLLERR`); always reported, never requested.
pub(crate) const EPOLLERR: u32 = 0x008;
/// Hangup (`EPOLLHUP`); always reported, never requested.
pub(crate) const EPOLLHUP: u32 = 0x010;
/// Peer shut down its write half (`EPOLLRDHUP`).
pub(crate) const EPOLLRDHUP: u32 = 0x2000;

/// One readiness event out of `epoll_wait`.
///
/// Layout matches the kernel's `struct epoll_event` on x86-64, where
/// glibc declares it packed (12 bytes: `u32` events + `u64` data).
#[repr(C, packed)]
#[derive(Clone, Copy, Default)]
pub(crate) struct EpollEvent {
    events: u32,
    data: u64,
}

impl EpollEvent {
    /// The ready event mask.
    pub(crate) fn events(&self) -> u32 {
        self.events
    }

    /// The caller-chosen token registered with the fd.
    pub(crate) fn token(&self) -> u64 {
        self.data
    }
}

#[cfg(target_os = "linux")]
mod imp {
    use super::EpollEvent;

    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    #[derive(Debug)]
    pub struct RawEpoll {
        fd: i32,
    }

    impl RawEpoll {
        pub fn new() -> Option<Self> {
            // SAFETY: epoll_create1 takes no pointers; failure is a
            // negative return.
            let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            (fd >= 0).then_some(Self { fd })
        }

        fn ctl(&self, op: i32, fd: i32, events: u32, token: u64) -> bool {
            let mut event = EpollEvent {
                events,
                data: token,
            };
            // SAFETY: the event struct is a live stack value matching the
            // kernel's expected (packed) layout; the kernel copies it
            // before returning. DEL ignores the pointer on modern
            // kernels but a valid one is passed anyway.
            unsafe { epoll_ctl(self.fd, op, fd, &raw mut event) == 0 }
        }

        pub fn add(&self, fd: i32, events: u32, token: u64) -> bool {
            self.ctl(EPOLL_CTL_ADD, fd, events, token)
        }

        pub fn modify(&self, fd: i32, events: u32, token: u64) -> bool {
            self.ctl(EPOLL_CTL_MOD, fd, events, token)
        }

        pub fn del(&self, fd: i32) -> bool {
            self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
        }

        pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> usize {
            if events.is_empty() {
                return 0;
            }
            // SAFETY: the out-buffer is a live, writable slice and
            // maxevents never exceeds its length; the kernel writes at
            // most that many entries. A negative return (EINTR) reports
            // zero events — the caller's loop just polls again.
            let n = unsafe {
                epoll_wait(
                    self.fd,
                    events.as_mut_ptr(),
                    events.len().min(i32::MAX as usize) as i32,
                    timeout_ms,
                )
            };
            n.max(0) as usize
        }
    }

    impl Drop for RawEpoll {
        fn drop(&mut self) {
            // SAFETY: closes the fd this struct exclusively owns.
            let _ = unsafe { close(self.fd) };
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    use super::EpollEvent;

    /// Non-Linux stub: construction fails, so no caller ever holds one.
    #[derive(Debug)]
    pub struct RawEpoll {}

    impl RawEpoll {
        pub fn new() -> Option<Self> {
            None
        }

        pub fn add(&self, _fd: i32, _events: u32, _token: u64) -> bool {
            false
        }

        pub fn modify(&self, _fd: i32, _events: u32, _token: u64) -> bool {
            false
        }

        pub fn del(&self, _fd: i32) -> bool {
            false
        }

        pub fn wait(&self, _events: &mut [EpollEvent], _timeout_ms: i32) -> usize {
            0
        }
    }
}

/// A safe handle on one epoll interest set.
///
/// `None` from [`Epoll::new`] is the host's way of saying "no reactor
/// here" — the caller must fall back, visibly.
#[derive(Debug)]
pub(crate) struct Epoll {
    raw: imp::RawEpoll,
}

impl Epoll {
    pub(crate) fn new() -> Option<Self> {
        imp::RawEpoll::new().map(|raw| Self { raw })
    }

    /// Registers `fd` for `events`, tagged with `token`.
    pub(crate) fn add(&self, fd: i32, events: u32, token: u64) -> bool {
        self.raw.add(fd, events, token)
    }

    /// Re-arms `fd` with a new event mask (level-triggered).
    pub(crate) fn modify(&self, fd: i32, events: u32, token: u64) -> bool {
        self.raw.modify(fd, events, token)
    }

    /// Removes `fd` from the interest set (best-effort: closing the fd
    /// removes it anyway).
    pub(crate) fn del(&self, fd: i32) -> bool {
        self.raw.del(fd)
    }

    /// Blocks up to `timeout_ms` (`-1` = forever) for readiness; fills
    /// `events` and returns how many entries are valid.
    pub(crate) fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> usize {
        self.raw.wait(events, timeout_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[cfg(target_os = "linux")]
    #[test]
    fn epoll_event_layout_matches_kernel() {
        // x86-64 glibc packs epoll_event to 12 bytes; a mismatch here
        // would corrupt every event the kernel writes.
        assert_eq!(std::mem::size_of::<EpollEvent>(), 12);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn wait_times_out_on_empty_interest_set() {
        let ep = Epoll::new().expect("linux hosts have epoll");
        let mut events = [EpollEvent::default(); 4];
        assert_eq!(ep.wait(&mut events, 0), 0);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn wakes_on_registered_eventfd() {
        let ep = Epoll::new().expect("linux hosts have epoll");
        let wake = ame_store::WakeFd::new().expect("linux hosts have eventfd");
        assert!(ep.add(wake.raw_fd(), EPOLLIN, 42));
        let mut events = [EpollEvent::default(); 4];
        assert_eq!(ep.wait(&mut events, 0), 0, "unsignalled fd is not ready");
        wake.signal();
        assert_eq!(ep.wait(&mut events, 1000), 1);
        assert_eq!(events[0].token(), 42);
        assert!(events[0].events() & EPOLLIN != 0);
        wake.drain();
        assert_eq!(ep.wait(&mut events, 0), 0, "drained fd is not ready");
        assert!(ep.del(wake.raw_fd()));
    }
}
