//! Quarantined `epoll(7)` binding for the connection reactor.
//!
//! Same construction rules as `ame-store`'s `affinity`/`wake` modules:
//! the workspace links no libc crate, so the four syscalls the reactor
//! needs are declared by hand and wrapped in a safe [`Epoll`] handle.
//! Everything else in the server stays under `#![deny(unsafe_code)]`.
//!
//! Failure is never silent but always *detectable up front*:
//! [`Epoll::new`] returns `None` on hosts without epoll (any non-Linux
//! OS, or fd exhaustion), and the server reacts by falling back to
//! thread-per-connection serving with a recorded telemetry gauge —
//! the reactor is an acceleration, not a correctness requirement.

#![allow(unsafe_code)]

/// Readable (`EPOLLIN`).
pub(crate) const EPOLLIN: u32 = 0x001;
/// Writable (`EPOLLOUT`).
pub(crate) const EPOLLOUT: u32 = 0x004;
/// Error condition (`EPOLLERR`); always reported, never requested.
pub(crate) const EPOLLERR: u32 = 0x008;
/// Hangup (`EPOLLHUP`); always reported, never requested.
pub(crate) const EPOLLHUP: u32 = 0x010;
/// Peer shut down its write half (`EPOLLRDHUP`).
pub(crate) const EPOLLRDHUP: u32 = 0x2000;

/// One readiness event out of `epoll_wait`.
///
/// Layout matches the kernel's `struct epoll_event`, whose ABI is
/// arch-dependent: x86-64 packs it to 12 bytes (`u32` events + `u64`
/// data, no padding), every other Linux target uses natural alignment
/// (16 bytes, 4 padding after `events`). Getting this wrong is memory
/// corruption — the kernel writes its layout into our buffer — so the
/// attribute is gated per-arch and asserted in the layout test below.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy, Default)]
pub(crate) struct EpollEvent {
    events: u32,
    data: u64,
}

impl EpollEvent {
    /// The ready event mask.
    pub(crate) fn events(&self) -> u32 {
        self.events
    }

    /// The caller-chosen token registered with the fd.
    pub(crate) fn token(&self) -> u64 {
        self.data
    }
}

#[cfg(target_os = "linux")]
mod imp {
    use super::EpollEvent;

    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EINTR: i32 = 4;

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn close(fd: i32) -> i32;
        // glibc and musl both export errno's thread-local address under
        // this name on Linux.
        fn __errno_location() -> *mut i32;
    }

    #[derive(Debug)]
    pub struct RawEpoll {
        fd: i32,
    }

    impl RawEpoll {
        pub fn new() -> Option<Self> {
            // SAFETY: epoll_create1 takes no pointers; failure is a
            // negative return.
            let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            (fd >= 0).then_some(Self { fd })
        }

        fn ctl(&self, op: i32, fd: i32, events: u32, token: u64) -> bool {
            let mut event = EpollEvent {
                events,
                data: token,
            };
            // SAFETY: the event struct is a live stack value matching the
            // kernel's expected (packed) layout; the kernel copies it
            // before returning. DEL ignores the pointer on modern
            // kernels but a valid one is passed anyway.
            unsafe { epoll_ctl(self.fd, op, fd, &raw mut event) == 0 }
        }

        pub fn add(&self, fd: i32, events: u32, token: u64) -> bool {
            self.ctl(EPOLL_CTL_ADD, fd, events, token)
        }

        pub fn modify(&self, fd: i32, events: u32, token: u64) -> bool {
            self.ctl(EPOLL_CTL_MOD, fd, events, token)
        }

        pub fn del(&self, fd: i32) -> bool {
            self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
        }

        pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> Result<usize, i32> {
            if events.is_empty() {
                return Ok(0);
            }
            // SAFETY: the out-buffer is a live, writable slice and
            // maxevents never exceeds its length; the kernel writes at
            // most that many entries.
            let n = unsafe {
                epoll_wait(
                    self.fd,
                    events.as_mut_ptr(),
                    events.len().min(i32::MAX as usize) as i32,
                    timeout_ms,
                )
            };
            if n >= 0 {
                return Ok(n as usize);
            }
            // SAFETY: __errno_location returns the calling thread's
            // always-valid errno address.
            let errno = unsafe { *__errno_location() };
            if errno == EINTR {
                // A signal is routine: report zero events, poll again.
                Ok(0)
            } else {
                // Anything else (EBADF, EINVAL, EFAULT) will never clear
                // on retry; surface it so the loop can stop instead of
                // spinning silently at the poll interval forever.
                Err(errno)
            }
        }
    }

    impl Drop for RawEpoll {
        fn drop(&mut self) {
            // SAFETY: closes the fd this struct exclusively owns.
            let _ = unsafe { close(self.fd) };
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    use super::EpollEvent;

    /// Non-Linux stub: construction fails, so no caller ever holds one.
    #[derive(Debug)]
    pub struct RawEpoll {}

    impl RawEpoll {
        pub fn new() -> Option<Self> {
            None
        }

        pub fn add(&self, _fd: i32, _events: u32, _token: u64) -> bool {
            false
        }

        pub fn modify(&self, _fd: i32, _events: u32, _token: u64) -> bool {
            false
        }

        pub fn del(&self, _fd: i32) -> bool {
            false
        }

        pub fn wait(&self, _events: &mut [EpollEvent], _timeout_ms: i32) -> Result<usize, i32> {
            Ok(0)
        }
    }
}

/// A safe handle on one epoll interest set.
///
/// `None` from [`Epoll::new`] is the host's way of saying "no reactor
/// here" — the caller must fall back, visibly.
#[derive(Debug)]
pub(crate) struct Epoll {
    raw: imp::RawEpoll,
}

impl Epoll {
    pub(crate) fn new() -> Option<Self> {
        imp::RawEpoll::new().map(|raw| Self { raw })
    }

    /// Registers `fd` for `events`, tagged with `token`.
    pub(crate) fn add(&self, fd: i32, events: u32, token: u64) -> bool {
        self.raw.add(fd, events, token)
    }

    /// Re-arms `fd` with a new event mask (level-triggered).
    pub(crate) fn modify(&self, fd: i32, events: u32, token: u64) -> bool {
        self.raw.modify(fd, events, token)
    }

    /// Removes `fd` from the interest set (best-effort: closing the fd
    /// removes it anyway).
    pub(crate) fn del(&self, fd: i32) -> bool {
        self.raw.del(fd)
    }

    /// Blocks up to `timeout_ms` (`-1` = forever) for readiness; fills
    /// `events` and returns how many entries are valid. `Err(errno)`
    /// reports a non-retryable failure (EINTR is absorbed as `Ok(0)`):
    /// the interest set is unusable and the caller must stop polling it.
    pub(crate) fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> Result<usize, i32> {
        self.raw.wait(events, timeout_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[cfg(target_os = "linux")]
    #[test]
    fn epoll_event_layout_matches_kernel() {
        // The kernel packs struct epoll_event only on x86-64 (12 bytes);
        // every other Linux arch pads it to 16. A mismatch here would
        // corrupt every event the kernel writes, so the expectation is
        // pinned per-arch rather than derived from the Rust struct.
        #[cfg(target_arch = "x86_64")]
        assert_eq!(std::mem::size_of::<EpollEvent>(), 12);
        #[cfg(not(target_arch = "x86_64"))]
        assert_eq!(std::mem::size_of::<EpollEvent>(), 16);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn wait_times_out_on_empty_interest_set() {
        let ep = Epoll::new().expect("linux hosts have epoll");
        let mut events = [EpollEvent::default(); 4];
        assert_eq!(ep.wait(&mut events, 0), Ok(0));
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn wakes_on_registered_eventfd() {
        let ep = Epoll::new().expect("linux hosts have epoll");
        let wake = ame_store::WakeFd::new().expect("linux hosts have eventfd");
        assert!(ep.add(wake.raw_fd(), EPOLLIN, 42));
        let mut events = [EpollEvent::default(); 4];
        assert_eq!(
            ep.wait(&mut events, 0),
            Ok(0),
            "unsignalled fd is not ready"
        );
        wake.signal();
        assert_eq!(ep.wait(&mut events, 1000), Ok(1));
        assert_eq!(events[0].token(), 42);
        assert!(events[0].events() & EPOLLIN != 0);
        wake.drain();
        assert_eq!(ep.wait(&mut events, 0), Ok(0), "drained fd is not ready");
        assert!(ep.del(wake.raw_fd()));
    }
}
