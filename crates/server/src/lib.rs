//! Network front-end for the secure store: the trust boundary moved to
//! a wire.
//!
//! SecDDR-style designs place the authentication boundary at the memory
//! *interface*; this crate is the software analogue. Untrusted clients
//! speak a length-prefixed binary protocol over TCP
//! ([`protocol`]); behind the boundary every tenant owns an
//! independently keyed [`SecureStore`](ame_store::SecureStore), so one
//! tenant's compromise — even a poisoned shard mid-attack — never
//! crosses into another's namespace.
//!
//! The pipeline semantics of the in-process
//! [`Session`](ame_store::Session) travel the wire unchanged: clients
//! choose request ids, keep a window of requests in flight, and receive
//! responses out of order across shards but FIFO within one. Errors
//! arrive as typed codes that decode back to the exact
//! [`StoreError`](ame_store::StoreError) the store raised.
//!
//! * [`server`] — listener, serving modes (thread-per-connection or a
//!   fixed epoll reactor pool), tenants, quotas, graceful drain.
//! * [`client`] — blocking [`Client`] and windowed [`PipelinedClient`].
//! * [`protocol`] — frames, opcodes, the exhaustive error-code table.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod protocol;
mod reactor;
pub mod server;
mod sys;

pub use client::{Client, ClientError, PipelinedClient, PipelinedResponse, PipelinedValue};
pub use protocol::{FrameError, WireError, PROTOCOL_VERSION};
pub use server::{default_reactor_threads, Server, ServerConfig, ServerMode, TenantSpec};
