//! Client side of the wire protocol: a blocking one-at-a-time
//! [`Client`] and a windowed [`PipelinedClient`] that keeps many
//! requests in flight.

use crate::protocol::{
    block_payload, decode_error, op, read_frame, write_frame, FrameError, WireError,
    DEFAULT_MAX_FRAME, PROTOCOL_VERSION, STATUS_OK,
};
use ame_store::BLOCK_BYTES;
use std::collections::HashMap;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed (or the server closed the connection).
    Io(io::Error),
    /// The byte stream stopped being a frame stream.
    Frame(FrameError),
    /// The server answered with a typed error.
    Wire(WireError),
    /// The response was well-framed but its payload made no sense for
    /// the request (a server bug or a version skew).
    Protocol(&'static str),
    /// The pipelined window is full; reap a response first.
    WindowFull,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport: {e}"),
            ClientError::Frame(e) => write!(f, "framing: {e}"),
            ClientError::Wire(e) => write!(f, "server: {e}"),
            ClientError::Protocol(what) => write!(f, "protocol violation: {what}"),
            ClientError::WindowFull => write!(f, "pipeline window full"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

/// Shared connection state: socket, request-id allocator, handshake
/// grants.
struct Conn {
    stream: TcpStream,
    next_id: u64,
    granted_window: usize,
    shards: usize,
}

impl Conn {
    fn connect(addr: impl ToSocketAddrs, tenant: u32, window: u32) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let mut payload = Vec::with_capacity(12);
        payload.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
        payload.extend_from_slice(&tenant.to_le_bytes());
        payload.extend_from_slice(&window.to_le_bytes());
        let mut conn = Self {
            stream,
            next_id: 1,
            granted_window: 0,
            shards: 0,
        };
        let req_id = conn.send(op::HELLO, &payload)?;
        let frame = read_frame(&mut conn.stream, DEFAULT_MAX_FRAME)?;
        if frame.tag != STATUS_OK {
            return Err(ClientError::Wire(decode_error(frame.tag, &frame.payload)));
        }
        if frame.req_id != req_id || frame.payload.len() != 8 {
            return Err(ClientError::Protocol("hello response shape"));
        }
        conn.granted_window = u32::from_le_bytes(frame.payload[0..4].try_into().unwrap()) as usize;
        conn.shards = u32::from_le_bytes(frame.payload[4..8].try_into().unwrap()) as usize;
        Ok(conn)
    }

    fn send(&mut self, opcode: u8, payload: &[u8]) -> Result<u64, ClientError> {
        let req_id = self.next_id;
        self.next_id += 1;
        write_frame(&mut self.stream, opcode, req_id, payload)?;
        Ok(req_id)
    }

    fn recv(&mut self) -> Result<(u64, Result<Vec<u8>, WireError>), ClientError> {
        let frame = read_frame(&mut self.stream, DEFAULT_MAX_FRAME)?;
        if frame.tag == STATUS_OK {
            Ok((frame.req_id, Ok(frame.payload)))
        } else {
            Ok((frame.req_id, Err(decode_error(frame.tag, &frame.payload))))
        }
    }
}

fn addr_payload(addr: u64) -> [u8; 8] {
    addr.to_le_bytes()
}

/// Blocking client: one request outstanding at a time, so every call is
/// send-then-receive. The simplest correct consumer of the protocol —
/// and the reference for what the pipelined client must agree with.
pub struct Client {
    conn: Conn,
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client").finish_non_exhaustive()
    }
}

impl Client {
    /// Connects and performs the `Hello` handshake as `tenant`.
    ///
    /// # Errors
    ///
    /// Transport failures, or a typed rejection (unknown tenant, quota,
    /// version mismatch, shutdown).
    pub fn connect(addr: impl ToSocketAddrs, tenant: u32) -> Result<Self, ClientError> {
        Ok(Self {
            conn: Conn::connect(addr, tenant, 1)?,
        })
    }

    /// Shard count of the tenant's store (from the handshake).
    #[must_use]
    pub fn shards(&self) -> usize {
        self.conn.shards
    }

    /// One round trip; checks the response answers this request.
    fn call(&mut self, opcode: u8, payload: &[u8]) -> Result<Vec<u8>, ClientError> {
        let req_id = self.conn.send(opcode, payload)?;
        let (id, result) = self.conn.recv()?;
        // A shutdown notice (request id 0) can arrive instead of the
        // answer; surface it as the call's failure.
        if id != req_id && !(id == 0 && result.is_err()) {
            return Err(ClientError::Protocol("response for a different request"));
        }
        result.map_err(ClientError::Wire)
    }

    /// Verified read of the block at `addr`.
    ///
    /// # Errors
    ///
    /// [`ClientError::Wire`] carries the store's own error for this
    /// address (poisoned shard, out of range, …).
    pub fn read(&mut self, addr: u64) -> Result<[u8; BLOCK_BYTES], ClientError> {
        let payload = self.call(op::READ, &addr_payload(addr))?;
        block_payload(&payload).ok_or(ClientError::Protocol("read payload size"))
    }

    /// Writes the block at `addr`.
    ///
    /// # Errors
    ///
    /// As [`Client::read`].
    pub fn write(&mut self, addr: u64, data: &[u8; BLOCK_BYTES]) -> Result<(), ClientError> {
        let mut payload = Vec::with_capacity(8 + BLOCK_BYTES);
        payload.extend_from_slice(&addr_payload(addr));
        payload.extend_from_slice(data);
        let out = self.call(op::WRITE, &payload)?;
        if out.is_empty() {
            Ok(())
        } else {
            Err(ClientError::Protocol("write payload size"))
        }
    }

    /// Atomic compare-and-swap: installs `new` iff the block currently
    /// equals `expected`. Returns the pre-image — the swap took exactly
    /// when the pre-image equals `expected`.
    ///
    /// # Errors
    ///
    /// As [`Client::read`].
    pub fn cas(
        &mut self,
        addr: u64,
        expected: &[u8; BLOCK_BYTES],
        new: &[u8; BLOCK_BYTES],
    ) -> Result<[u8; BLOCK_BYTES], ClientError> {
        let mut payload = Vec::with_capacity(8 + 2 * BLOCK_BYTES);
        payload.extend_from_slice(&addr_payload(addr));
        payload.extend_from_slice(expected);
        payload.extend_from_slice(new);
        let out = self.call(op::CAS, &payload)?;
        block_payload(&out).ok_or(ClientError::Protocol("cas payload size"))
    }

    fn tamper(&mut self, addr: u64, bit: u32, kind: u8) -> Result<(), ClientError> {
        let mut payload = Vec::with_capacity(13);
        payload.extend_from_slice(&addr_payload(addr));
        payload.extend_from_slice(&bit.to_le_bytes());
        payload.push(kind);
        self.call(op::TAMPER, &payload).map(|_| ())
    }

    /// Flips one data bit in the tenant's sealed memory (fault/attack
    /// injection — the wire twin of the in-process tamper API).
    ///
    /// # Errors
    ///
    /// As [`Client::read`].
    pub fn tamper_data_bit(&mut self, addr: u64, bit: u32) -> Result<(), ClientError> {
        self.tamper(addr, bit, 0)
    }

    /// Flips one ECC side-band bit.
    ///
    /// # Errors
    ///
    /// As [`Client::read`].
    pub fn tamper_sideband_bit(&mut self, addr: u64, bit: u32) -> Result<(), ClientError> {
        self.tamper(addr, bit, 1)
    }

    /// Orderly close: the server acks and closes the connection.
    ///
    /// # Errors
    ///
    /// Transport failures only.
    pub fn goodbye(mut self) -> Result<(), ClientError> {
        self.call(op::GOODBYE, &[]).map(|_| ())
    }
}

/// A successfully completed pipelined operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipelinedValue {
    /// A read's verified block.
    Data([u8; BLOCK_BYTES]),
    /// A write was sealed and acknowledged.
    Written,
}

/// One reaped pipelined response: the request id it answers and the
/// operation's outcome.
pub type PipelinedResponse = (u64, Result<PipelinedValue, WireError>);

/// Windowed client: up to `window` requests in flight, responses reaped
/// in whatever order the server finishes them.
///
/// The window is the handshake's granted per-shard window, applied here
/// to the *whole* connection — conservative, so a well-behaved pipeline
/// never sees [`StoreError::Overloaded`](ame_store::StoreError), which
/// keeps closed-loop load generators honest (every submitted operation
/// completes).
pub struct PipelinedClient {
    conn: Conn,
    /// Opcode per in-flight request id — needed to decode the payload.
    pending: HashMap<u64, u8>,
}

impl std::fmt::Debug for PipelinedClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PipelinedClient")
            .field("in_flight", &self.pending.len())
            .finish_non_exhaustive()
    }
}

impl PipelinedClient {
    /// Connects as `tenant`, requesting an in-flight window of
    /// `window` (the server may grant less — see
    /// [`PipelinedClient::window`]).
    ///
    /// # Errors
    ///
    /// As [`Client::connect`].
    pub fn connect(
        addr: impl ToSocketAddrs,
        tenant: u32,
        window: u32,
    ) -> Result<Self, ClientError> {
        Ok(Self {
            conn: Conn::connect(addr, tenant, window)?,
            pending: HashMap::new(),
        })
    }

    /// The granted window: the submit ceiling.
    #[must_use]
    pub fn window(&self) -> usize {
        self.conn.granted_window
    }

    /// Requests currently in flight.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// Shard count of the tenant's store (from the handshake).
    #[must_use]
    pub fn shards(&self) -> usize {
        self.conn.shards
    }

    fn submit(&mut self, opcode: u8, payload: &[u8]) -> Result<u64, ClientError> {
        if self.pending.len() >= self.conn.granted_window {
            return Err(ClientError::WindowFull);
        }
        let req_id = self.conn.send(opcode, payload)?;
        self.pending.insert(req_id, opcode);
        Ok(req_id)
    }

    /// Submits a read; returns its request id immediately.
    ///
    /// # Errors
    ///
    /// [`ClientError::WindowFull`] when the window is exhausted —
    /// [`PipelinedClient::recv`] first.
    pub fn submit_read(&mut self, addr: u64) -> Result<u64, ClientError> {
        self.submit(op::READ, &addr_payload(addr))
    }

    /// Submits a write; returns its request id immediately.
    ///
    /// # Errors
    ///
    /// As [`PipelinedClient::submit_read`].
    pub fn submit_write(
        &mut self,
        addr: u64,
        data: &[u8; BLOCK_BYTES],
    ) -> Result<u64, ClientError> {
        let mut payload = Vec::with_capacity(8 + BLOCK_BYTES);
        payload.extend_from_slice(&addr_payload(addr));
        payload.extend_from_slice(data);
        self.submit(op::WRITE, &payload)
    }

    /// Like [`PipelinedClient::submit_read`], but when the window is
    /// full it **blocks** reaping responses until a slot frees instead
    /// of failing with [`ClientError::WindowFull`]. Returns the new
    /// request's id plus every response reaped while waiting (possibly
    /// empty) so callers keep full latency/outcome bookkeeping —
    /// nothing is discarded.
    ///
    /// This is what closed-loop load generators should call: the
    /// fast-fail `submit_read` turns a full window into a busy-retry
    /// spin at high connection counts, burning the CPU the server
    /// needs.
    ///
    /// # Errors
    ///
    /// As [`PipelinedClient::recv`].
    pub fn submit_read_wait(
        &mut self,
        addr: u64,
    ) -> Result<(u64, Vec<PipelinedResponse>), ClientError> {
        let reaped = self.wait_for_slot()?;
        let req_id = self.submit_read(addr)?;
        Ok((req_id, reaped))
    }

    /// Blocking-window twin of [`PipelinedClient::submit_write`]; see
    /// [`PipelinedClient::submit_read_wait`].
    ///
    /// # Errors
    ///
    /// As [`PipelinedClient::recv`].
    pub fn submit_write_wait(
        &mut self,
        addr: u64,
        data: &[u8; BLOCK_BYTES],
    ) -> Result<(u64, Vec<PipelinedResponse>), ClientError> {
        let reaped = self.wait_for_slot()?;
        let req_id = self.submit_write(addr, data)?;
        Ok((req_id, reaped))
    }

    /// Reaps (blocking) until the window has a free slot.
    fn wait_for_slot(&mut self) -> Result<Vec<PipelinedResponse>, ClientError> {
        let mut reaped = Vec::new();
        while self.pending.len() >= self.conn.granted_window {
            reaped.push(self.recv()?);
        }
        Ok(reaped)
    }

    /// Blocks for the next response, in server completion order.
    /// Returns the request id it answers and the operation's outcome.
    ///
    /// # Errors
    ///
    /// Transport/framing failures, a shutdown notice
    /// ([`ClientError::Wire`] with
    /// [`WireError::ShuttingDown`]) when the server drains under us, or
    /// [`ClientError::Protocol`] for a response to nothing we sent.
    pub fn recv(&mut self) -> Result<PipelinedResponse, ClientError> {
        let (req_id, result) = self.conn.recv()?;
        let Some(opcode) = self.pending.remove(&req_id) else {
            if req_id == 0 {
                if let Err(e) = result {
                    // Connection-level notice (shutdown drain complete).
                    return Err(ClientError::Wire(e));
                }
            }
            return Err(ClientError::Protocol("response for unknown request id"));
        };
        let outcome = match result {
            Ok(payload) => match opcode {
                op::READ => match block_payload(&payload) {
                    Some(block) => Ok(PipelinedValue::Data(block)),
                    None => return Err(ClientError::Protocol("read payload size")),
                },
                op::WRITE if payload.is_empty() => Ok(PipelinedValue::Written),
                _ => return Err(ClientError::Protocol("unexpected success payload")),
            },
            Err(e) => Err(e),
        };
        Ok((req_id, outcome))
    }

    /// Reaps until nothing is in flight, discarding payloads; errors in
    /// any response surface as that operation's [`WireError`] in the
    /// returned vector.
    ///
    /// # Errors
    ///
    /// Transport failures abort the drain.
    pub fn drain(&mut self) -> Result<Vec<PipelinedResponse>, ClientError> {
        let mut out = Vec::with_capacity(self.pending.len());
        while !self.pending.is_empty() {
            out.push(self.recv()?);
        }
        Ok(out)
    }

    /// Orderly close (drains the window first).
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn goodbye(mut self) -> Result<(), ClientError> {
        let _ = self.drain()?;
        let req_id = self.conn.send(op::GOODBYE, &[])?;
        let (id, result) = self.conn.recv()?;
        result.map_err(ClientError::Wire)?;
        if id != req_id {
            return Err(ClientError::Protocol("goodbye response id"));
        }
        Ok(())
    }
}
