//! The wire protocol: length-prefixed binary frames and the exhaustive
//! [`StoreError`]↔code table.
//!
//! # Frame layout
//!
//! Requests and responses share one shape (all integers little-endian):
//!
//! ```text
//! [u32 len] [u8 tag] [u64 req_id] [payload: len - 9 bytes]
//! ```
//!
//! `len` counts everything after itself (tag + request id + payload).
//! In a request the tag is an opcode ([`op`]); in a response it is a
//! status: [`STATUS_OK`] or an error code ([`code`]). Request ids are
//! client-chosen; within one connection's in-flight window they must be
//! unique, and responses may arrive in any order (the store completes
//! per-shard FIFO, but shards race each other).
//!
//! # Error codes
//!
//! Codes `0x10..=0x17` are the eight [`StoreError`] variants, each with
//! a payload carrying the variant's fields, so a client round-trips the
//! exact error the store raised. Codes `0x20..=0x26` are server-side
//! rejections that never touch the store (bad framing, quota, version,
//! shutdown). [`encode_store_error`] matches every variant with no
//! wildcard arm: adding a `StoreError` variant fails compilation here
//! until a code is assigned. Decoding is future-proof in the other
//! direction — a code this client does not know becomes
//! [`WireError::Unknown`] instead of a parse failure.

use ame_engine::ReadError;
use ame_store::{StoreError, BLOCK_BYTES};
use ame_tree::merkle::VerifyError;
use std::io::{self, Read, Write};

/// Protocol version spoken by this crate (checked in the `Hello`
/// handshake).
pub const PROTOCOL_VERSION: u32 = 1;

/// Frame header bytes after the length prefix: tag (1) + request id (8).
pub const HEADER_BYTES: usize = 9;

/// Default upper bound on `len` (the largest legitimate frame is a
/// `Cas` request: header + addr + two blocks ≈ 145 bytes, so 4 KiB is
/// generous; anything larger is hostile or garbage).
pub const DEFAULT_MAX_FRAME: u32 = 4096;

/// Response status tag for success.
pub const STATUS_OK: u8 = 0x00;

/// Request opcodes.
pub mod op {
    /// Handshake; payload `[u32 version][u32 tenant][u32 window]`.
    /// Response payload `[u32 granted_window][u32 shards]`.
    pub const HELLO: u8 = 0x01;
    /// Verified read; payload `[u64 addr]`, response payload one block.
    pub const READ: u8 = 0x02;
    /// Write; payload `[u64 addr][block]`, empty response payload.
    pub const WRITE: u8 = 0x03;
    /// Compare-and-swap; payload `[u64 addr][expected block][new block]`,
    /// response payload the pre-image (caller compares to learn whether
    /// the swap took).
    pub const CAS: u8 = 0x04;
    /// Fault injection (test/attack surface, mirroring the in-process
    /// tamper API); payload `[u64 addr][u32 bit][u8 kind]` with kind 0 =
    /// data, 1 = ECC side-band. Empty response payload.
    pub const TAMPER: u8 = 0x05;
    /// Orderly goodbye; empty payload, empty response, then the server
    /// closes the connection.
    pub const GOODBYE: u8 = 0x06;
}

/// Wire error codes (response status tags other than [`STATUS_OK`]).
pub mod code {
    /// [`StoreError::OutOfRange`]; payload `[u64 addr][u64 len]`.
    pub const OUT_OF_RANGE: u8 = 0x10;
    /// [`StoreError::Unaligned`]; payload `[u64 addr]`.
    pub const UNALIGNED: u8 = 0x11;
    /// [`StoreError::Overloaded`]; payload `[u32 shard]`.
    pub const OVERLOADED: u8 = 0x12;
    /// [`StoreError::ShardPoisoned`]; payload `[u32 shard][u8 has_cause]`
    /// then, if `has_cause`, a cause tag (0 = tree with
    /// `[u32 level][u64 node]`, 1 = MAC uncorrectable, 2 = ECC
    /// uncorrectable, 3 = integrity violation).
    pub const SHARD_POISONED: u8 = 0x13;
    /// [`StoreError::Disconnected`]; payload `[u32 shard]`.
    pub const DISCONNECTED: u8 = 0x14;
    /// [`StoreError::Timeout`]; empty payload.
    pub const TIMEOUT: u8 = 0x15;
    /// [`StoreError::TxnAborted`]; empty payload.
    pub const TXN_ABORTED: u8 = 0x16;
    /// [`StoreError::TxnConflict`]; payload `[u64 addr]`.
    pub const TXN_CONFLICT: u8 = 0x17;

    /// Server is draining for shutdown; no new operations admitted.
    pub const SHUTTING_DOWN: u8 = 0x20;
    /// Malformed frame (oversized length prefix, short header, bad
    /// payload shape, or an operation before `Hello`).
    pub const BAD_FRAME: u8 = 0x21;
    /// Opcode the server does not recognise; payload `[u8 opcode]`.
    pub const UNKNOWN_OPCODE: u8 = 0x22;
    /// Request id already in flight on this connection.
    pub const DUPLICATE_REQUEST_ID: u8 = 0x23;
    /// `Hello` named a tenant the server does not host; payload
    /// `[u32 tenant]`.
    pub const UNKNOWN_TENANT: u8 = 0x24;
    /// Tenant connection quota exhausted.
    pub const QUOTA_EXCEEDED: u8 = 0x25;
    /// Client protocol version unsupported; payload `[u32 server_version]`.
    pub const BAD_VERSION: u8 = 0x26;
}

/// One decoded frame (request or response — the tag disambiguates).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Opcode (request) or status (response).
    pub tag: u8,
    /// Client-chosen request id the response echoes.
    pub req_id: u64,
    /// Everything after the header.
    pub payload: Vec<u8>,
}

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// The transport failed (includes clean EOF between frames as
    /// `UnexpectedEof`).
    Io(io::Error),
    /// The length prefix exceeds the negotiated maximum — hostile or
    /// desynchronised; the connection cannot be resynchronised.
    Oversized {
        /// Claimed frame length.
        len: u32,
        /// The enforced ceiling.
        max: u32,
    },
    /// The length prefix is too small to hold the tag + request id.
    TooShort {
        /// Claimed frame length.
        len: u32,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame transport: {e}"),
            FrameError::Oversized { len, max } => {
                write!(f, "frame length {len} exceeds the {max}-byte ceiling")
            }
            FrameError::TooShort { len } => {
                write!(
                    f,
                    "frame length {len} cannot hold the {HEADER_BYTES}-byte header"
                )
            }
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Reads one frame, enforcing `max_len` on the length prefix *before*
/// allocating or reading the body, so a hostile 4 GiB prefix costs
/// nothing.
///
/// # Errors
///
/// [`FrameError::Io`] on transport failure or EOF,
/// [`FrameError::Oversized`] / [`FrameError::TooShort`] on a length
/// prefix outside `HEADER_BYTES..=max_len`.
pub fn read_frame(r: &mut impl Read, max_len: u32) -> Result<Frame, FrameError> {
    let mut prefix = [0u8; 4];
    r.read_exact(&mut prefix)?;
    let len = u32::from_le_bytes(prefix);
    if len > max_len {
        return Err(FrameError::Oversized { len, max: max_len });
    }
    if (len as usize) < HEADER_BYTES {
        return Err(FrameError::TooShort { len });
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    let tag = body[0];
    let req_id = u64::from_le_bytes(body[1..9].try_into().unwrap());
    body.drain(..HEADER_BYTES);
    Ok(Frame {
        tag,
        req_id,
        payload: body,
    })
}

/// Writes one frame and flushes it.
///
/// # Errors
///
/// Propagates transport errors.
pub fn write_frame(w: &mut impl Write, tag: u8, req_id: u64, payload: &[u8]) -> io::Result<()> {
    let len = (HEADER_BYTES + payload.len()) as u32;
    let mut buf = Vec::with_capacity(4 + len as usize);
    buf.extend_from_slice(&len.to_le_bytes());
    buf.push(tag);
    buf.extend_from_slice(&req_id.to_le_bytes());
    buf.extend_from_slice(payload);
    w.write_all(&buf)?;
    w.flush()
}

/// An error as decoded off the wire: either a faithful [`StoreError`]
/// or a server-side rejection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The store raised this exact error on the server.
    Store(StoreError),
    /// Server draining for shutdown.
    ShuttingDown,
    /// The server rejected the frame as malformed.
    BadFrame,
    /// The server did not recognise the opcode.
    UnknownOpcode(u8),
    /// The request id was already in flight on the connection.
    DuplicateRequestId,
    /// The tenant named in `Hello` is not hosted.
    UnknownTenant(u32),
    /// The tenant's connection quota is exhausted.
    QuotaExceeded,
    /// Protocol version mismatch; carries the server's version.
    BadVersion(u32),
    /// A code this client build does not know — a newer server. The
    /// request failed; the code is preserved for diagnostics.
    Unknown(u8),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Store(e) => write!(f, "store: {e}"),
            WireError::ShuttingDown => write!(f, "server shutting down"),
            WireError::BadFrame => write!(f, "server rejected the frame as malformed"),
            WireError::UnknownOpcode(opcode) => {
                write!(f, "server does not recognise opcode {opcode:#04x}")
            }
            WireError::DuplicateRequestId => write!(f, "request id already in flight"),
            WireError::UnknownTenant(t) => write!(f, "tenant {t} is not hosted"),
            WireError::QuotaExceeded => write!(f, "tenant connection quota exhausted"),
            WireError::BadVersion(v) => {
                write!(f, "protocol version mismatch (server speaks {v})")
            }
            WireError::Unknown(c) => write!(f, "unknown wire error code {c:#04x}"),
        }
    }
}

impl std::error::Error for WireError {}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Encodes a [`StoreError`] as `(code, payload)`.
///
/// The match is exhaustive **without a wildcard arm** on purpose:
/// adding a `StoreError` variant must fail compilation here until the
/// new variant gets a wire code and payload.
#[must_use]
pub fn encode_store_error(e: &StoreError) -> (u8, Vec<u8>) {
    let mut p = Vec::new();
    let code = match e {
        StoreError::OutOfRange { addr, len } => {
            put_u64(&mut p, *addr);
            put_u64(&mut p, *len);
            code::OUT_OF_RANGE
        }
        StoreError::Unaligned { addr } => {
            put_u64(&mut p, *addr);
            code::UNALIGNED
        }
        StoreError::Overloaded { shard } => {
            put_u32(&mut p, *shard as u32);
            code::OVERLOADED
        }
        StoreError::ShardPoisoned { shard, cause } => {
            put_u32(&mut p, *shard as u32);
            match cause {
                None => p.push(0),
                Some(cause) => {
                    p.push(1);
                    match cause {
                        ReadError::Tree(VerifyError { level, node }) => {
                            p.push(0);
                            put_u32(&mut p, *level as u32);
                            put_u64(&mut p, *node);
                        }
                        ReadError::MacUncorrectable => p.push(1),
                        ReadError::EccUncorrectable => p.push(2),
                        ReadError::IntegrityViolation => p.push(3),
                    }
                }
            }
            code::SHARD_POISONED
        }
        StoreError::Disconnected { shard } => {
            put_u32(&mut p, *shard as u32);
            code::DISCONNECTED
        }
        StoreError::Timeout => code::TIMEOUT,
        StoreError::TxnAborted => code::TXN_ABORTED,
        StoreError::TxnConflict { addr } => {
            put_u64(&mut p, *addr);
            code::TXN_CONFLICT
        }
    };
    (code, p)
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn u8(&mut self) -> Option<u8> {
        let v = *self.buf.get(self.pos)?;
        self.pos += 1;
        Some(v)
    }

    fn u32(&mut self) -> Option<u32> {
        let bytes = self.buf.get(self.pos..self.pos + 4)?;
        self.pos += 4;
        Some(u32::from_le_bytes(bytes.try_into().unwrap()))
    }

    fn u64(&mut self) -> Option<u64> {
        let bytes = self.buf.get(self.pos..self.pos + 8)?;
        self.pos += 8;
        Some(u64::from_le_bytes(bytes.try_into().unwrap()))
    }
}

fn decode_store_error(code: u8, payload: &[u8]) -> Option<WireError> {
    let mut c = Cursor {
        buf: payload,
        pos: 0,
    };
    let e = match code {
        code::OUT_OF_RANGE => StoreError::OutOfRange {
            addr: c.u64()?,
            len: c.u64()?,
        },
        code::UNALIGNED => StoreError::Unaligned { addr: c.u64()? },
        code::OVERLOADED => StoreError::Overloaded {
            shard: c.u32()? as usize,
        },
        code::SHARD_POISONED => {
            let shard = c.u32()? as usize;
            let cause = match c.u8()? {
                0 => None,
                _ => Some(match c.u8()? {
                    0 => ReadError::Tree(VerifyError {
                        level: c.u32()? as usize,
                        node: c.u64()?,
                    }),
                    1 => ReadError::MacUncorrectable,
                    2 => ReadError::EccUncorrectable,
                    3 => ReadError::IntegrityViolation,
                    _ => return None,
                }),
            };
            StoreError::ShardPoisoned { shard, cause }
        }
        code::DISCONNECTED => StoreError::Disconnected {
            shard: c.u32()? as usize,
        },
        code::TIMEOUT => StoreError::Timeout,
        code::TXN_ABORTED => StoreError::TxnAborted,
        code::TXN_CONFLICT => StoreError::TxnConflict { addr: c.u64()? },
        _ => return None,
    };
    Some(WireError::Store(e))
}

/// Decodes a non-OK response status into a [`WireError`].
///
/// Codes outside the table decode as [`WireError::Unknown`] — a newer
/// server remains talkable-to, its novel errors merely opaque.
#[must_use]
pub fn decode_error(code: u8, payload: &[u8]) -> WireError {
    if let Some(e) = decode_store_error(code, payload) {
        return e;
    }
    let mut c = Cursor {
        buf: payload,
        pos: 0,
    };
    match code {
        code::SHUTTING_DOWN => WireError::ShuttingDown,
        code::BAD_FRAME => WireError::BadFrame,
        code::UNKNOWN_OPCODE => match c.u8() {
            Some(opcode) => WireError::UnknownOpcode(opcode),
            None => WireError::BadFrame,
        },
        code::DUPLICATE_REQUEST_ID => WireError::DuplicateRequestId,
        code::UNKNOWN_TENANT => match c.u32() {
            Some(t) => WireError::UnknownTenant(t),
            None => WireError::BadFrame,
        },
        code::QUOTA_EXCEEDED => WireError::QuotaExceeded,
        code::BAD_VERSION => match c.u32() {
            Some(v) => WireError::BadVersion(v),
            None => WireError::BadFrame,
        },
        other => WireError::Unknown(other),
    }
}

/// Encodes a non-store server rejection as `(code, payload)`.
#[must_use]
pub fn encode_server_error(e: &WireError) -> (u8, Vec<u8>) {
    let mut p = Vec::new();
    let code = match e {
        WireError::Store(se) => return encode_store_error(se),
        WireError::ShuttingDown => code::SHUTTING_DOWN,
        WireError::BadFrame => code::BAD_FRAME,
        WireError::UnknownOpcode(opcode) => {
            p.push(*opcode);
            code::UNKNOWN_OPCODE
        }
        WireError::DuplicateRequestId => code::DUPLICATE_REQUEST_ID,
        WireError::UnknownTenant(t) => {
            put_u32(&mut p, *t);
            code::UNKNOWN_TENANT
        }
        WireError::QuotaExceeded => code::QUOTA_EXCEEDED,
        WireError::BadVersion(v) => {
            put_u32(&mut p, *v);
            code::BAD_VERSION
        }
        WireError::Unknown(c) => *c,
    };
    (code, p)
}

/// Splits a payload expected to be exactly one block.
#[must_use]
pub fn block_payload(payload: &[u8]) -> Option<[u8; BLOCK_BYTES]> {
    payload.try_into().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, op::READ, 42, &7u64.to_le_bytes()).unwrap();
        let frame = read_frame(&mut buf.as_slice(), DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(frame.tag, op::READ);
        assert_eq!(frame.req_id, 42);
        assert_eq!(frame.payload, 7u64.to_le_bytes());
    }

    #[test]
    fn oversized_prefix_rejected_before_reading_body() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        match read_frame(&mut buf.as_slice(), DEFAULT_MAX_FRAME) {
            Err(FrameError::Oversized { len, max }) => {
                assert_eq!(len, u32::MAX);
                assert_eq!(max, DEFAULT_MAX_FRAME);
            }
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    #[test]
    fn short_prefix_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&3u32.to_le_bytes());
        buf.extend_from_slice(&[0, 0, 0]);
        assert!(matches!(
            read_frame(&mut buf.as_slice(), DEFAULT_MAX_FRAME),
            Err(FrameError::TooShort { len: 3 })
        ));
    }

    #[test]
    fn truncated_body_is_io_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, op::WRITE, 1, &[0u8; 72]).unwrap();
        buf.truncate(buf.len() - 10);
        assert!(matches!(
            read_frame(&mut buf.as_slice(), DEFAULT_MAX_FRAME),
            Err(FrameError::Io(_))
        ));
    }
}
