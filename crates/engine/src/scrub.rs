//! Background DRAM scrubbing (Section 3.3, "Enabling Efficient
//! Scrubbing").
//!
//! Scrubbers periodically sweep memory to catch single-bit faults before
//! a second flip makes them uncorrectable. They traditionally rely on
//! per-word parity/ECC so a scan does not need the (secret-keyed) MAC
//! hardware. The paper keeps that property in the merged layout by
//! spending the one left-over side-band bit on a **ciphertext parity
//! bit**: "This bit can be used by a DRAM scrubbing hardware/firmware ...
//! to quickly and efficiently scan for single-bit errors without
//! re-computing MACs. The hamming coded MACs can also be scrubbed as
//! hamming codes contain a parity bit."
//!
//! [`Scrubber`] implements that pass over a [`DramStorage`]:
//!
//! * **MAC-in-ECC blocks**: the cheap parity bit flags any odd number of
//!   data flips; flagged blocks are escalated to the (expensive)
//!   MAC-based flip-and-check corrector. MAC-field flips are caught and
//!   repaired by the 7-bit SEC-DED over the tag without touching the MAC
//!   datapath at all.
//! * **Standard-ECC blocks**: classic per-word SEC-DED scrub.
//!
//! The scrubber is deliberately *not* given the cipher keys: everything
//! it repairs on its own uses only parity/Hamming state, mirroring the
//! hardware split between the scrub engine and the MEE. Blocks that need
//! MAC-based correction are reported for the engine to fix on its next
//! access.

use ame_dram::storage::DramStorage;
use ame_ecc::layout::{MacSideband, StandardSideband};
use ame_ecc::secded::DecodeOutcome;

/// Per-sweep scrubbing statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScrubStats {
    /// Blocks scanned.
    pub scanned: u64,
    /// Blocks whose ciphertext parity bit mismatched (odd data flips).
    pub parity_mismatches: u64,
    /// Single-bit MAC-field errors repaired in place via the MAC's own
    /// SEC-DED.
    pub mac_repairs: u64,
    /// Data errors repaired in place (standard-ECC mode only — the
    /// scrubber has no MAC keys).
    pub data_repairs: u64,
    /// Blocks flagged for MAC-based correction by the engine (MAC-in-ECC
    /// mode: parity mismatch, or even-flip suspicion from a failed MAC
    /// SEC-DED).
    pub escalated: u64,
    /// Blocks with detected-but-uncorrectable side-band state.
    pub uncorrectable: u64,
}

impl ame_telemetry::Metrics for ScrubStats {
    fn record(&self, sink: &mut dyn ame_telemetry::MetricSink) {
        sink.counter("scanned", self.scanned);
        sink.counter("parity_mismatches", self.parity_mismatches);
        sink.counter("mac_repairs", self.mac_repairs);
        sink.counter("data_repairs", self.data_repairs);
        sink.counter("escalated", self.escalated);
        sink.counter("uncorrectable", self.uncorrectable);
    }
}

/// Which side-band convention the scanned region uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScrubMode {
    /// Side-bands hold `MAC (56) | MAC check (7) | ciphertext parity (1)`.
    MacInEcc,
    /// Side-bands hold eight SEC-DED(72,64) check bytes.
    StandardEcc,
}

/// Outcome of scrubbing one block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockScrub {
    /// Nothing wrong.
    Clean,
    /// The block was repaired in place (Hamming/parity machinery only).
    Repaired,
    /// The block needs the engine's MAC-based corrector (address
    /// returned in the sweep report).
    NeedsMacCorrection,
    /// Side-band state is uncorrectably damaged (double MAC flip, or
    /// SEC-DED double error).
    Uncorrectable,
}

/// A key-less background scrubber over a functional DRAM array.
///
/// # Example
///
/// ```
/// use ame_dram::storage::{DramStorage, StoredBlock};
/// use ame_ecc::layout::MacSideband;
/// use ame_engine::scrub::{ScrubMode, Scrubber};
///
/// let mut mem = DramStorage::new();
/// let ct = [0x5au8; 64];
/// let sb = MacSideband::new(0x1234, &ct).to_bytes();
/// mem.write(0, StoredBlock { data: ct, sideband: sb });
/// mem.flip_sideband_bit(0, 9); // a fault lands in the stored MAC
///
/// let mut scrubber = Scrubber::new(ScrubMode::MacInEcc);
/// let report = scrubber.sweep(&mut mem, [0].into_iter());
/// assert_eq!(report.stats.mac_repairs, 1);
/// assert!(report.needs_mac_correction.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct Scrubber {
    mode: ScrubMode,
    stats: ScrubStats,
}

/// Result of one scrub sweep.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Statistics for this sweep only.
    pub stats: ScrubStats,
    /// Addresses that need MAC-based correction by the engine.
    pub needs_mac_correction: Vec<u64>,
    /// Addresses with uncorrectable side-band damage.
    pub uncorrectable: Vec<u64>,
}

impl Scrubber {
    /// Creates a scrubber for the given side-band convention.
    #[must_use]
    pub fn new(mode: ScrubMode) -> Self {
        Self {
            mode,
            stats: ScrubStats::default(),
        }
    }

    /// Lifetime statistics across all sweeps.
    #[must_use]
    pub fn stats(&self) -> ScrubStats {
        self.stats
    }

    /// Scrubs a single block in place.
    pub fn scrub_block(&mut self, memory: &mut DramStorage, addr: u64) -> BlockScrub {
        self.stats.scanned += 1;
        let stored = memory.read(addr);
        match self.mode {
            ScrubMode::MacInEcc => {
                let sb = MacSideband::from_bytes(stored.sideband);
                // 1. Repair the MAC field itself via its 7-bit SEC-DED.
                let mac_state = sb.recover_tag();
                let outcome = match mac_state {
                    DecodeOutcome::Clean { .. } => None,
                    DecodeOutcome::CorrectedData { word, .. }
                    | DecodeOutcome::CorrectedCheck { word } => {
                        // Rewrite a clean side-band (preserving the parity
                        // bit, which SEC-DED over the MAC does not cover).
                        let mut fixed = MacSideband::new(word, &stored.data);
                        if fixed.ciphertext_parity() != sb.ciphertext_parity() {
                            fixed = fixed.with_bit_flipped(63);
                        }
                        memory.write(
                            addr,
                            ame_dram::storage::StoredBlock {
                                data: stored.data,
                                sideband: fixed.to_bytes(),
                            },
                        );
                        self.stats.mac_repairs += 1;
                        Some(BlockScrub::Repaired)
                    }
                    DecodeOutcome::DoubleError | DecodeOutcome::Uncorrectable => {
                        self.stats.uncorrectable += 1;
                        Some(BlockScrub::Uncorrectable)
                    }
                };
                if let Some(BlockScrub::Uncorrectable) = outcome {
                    return BlockScrub::Uncorrectable;
                }
                // 2. Cheap ciphertext parity scan for data flips.
                let current = memory.read(addr);
                let sb = MacSideband::from_bytes(current.sideband);
                if !sb.scrub_matches(&current.data) {
                    self.stats.parity_mismatches += 1;
                    self.stats.escalated += 1;
                    return BlockScrub::NeedsMacCorrection;
                }
                match outcome {
                    Some(o) => o,
                    None => BlockScrub::Clean,
                }
            }
            ScrubMode::StandardEcc => {
                let sb = StandardSideband::from_bytes(stored.sideband);
                let decoded = sb.decode(&stored.data);
                if decoded.any_uncorrectable() {
                    self.stats.uncorrectable += 1;
                    return BlockScrub::Uncorrectable;
                }
                if !decoded.any_error() {
                    return BlockScrub::Clean;
                }
                let fixed = decoded.corrected_block().expect("correctable");
                memory.write(
                    addr,
                    ame_dram::storage::StoredBlock {
                        data: fixed,
                        sideband: StandardSideband::encode(&fixed).to_bytes(),
                    },
                );
                self.stats.data_repairs += 1;
                BlockScrub::Repaired
            }
        }
    }

    /// Sweeps a set of block addresses, repairing what parity/Hamming
    /// machinery can and reporting the rest.
    pub fn sweep(
        &mut self,
        memory: &mut DramStorage,
        addrs: impl Iterator<Item = u64>,
    ) -> SweepReport {
        let before = self.stats;
        let mut needs = Vec::new();
        let mut bad = Vec::new();
        for addr in addrs {
            match self.scrub_block(memory, addr) {
                BlockScrub::NeedsMacCorrection => needs.push(addr),
                BlockScrub::Uncorrectable => bad.push(addr),
                BlockScrub::Clean | BlockScrub::Repaired => {}
            }
        }
        let after = self.stats;
        SweepReport {
            stats: ScrubStats {
                scanned: after.scanned - before.scanned,
                parity_mismatches: after.parity_mismatches - before.parity_mismatches,
                mac_repairs: after.mac_repairs - before.mac_repairs,
                data_repairs: after.data_repairs - before.data_repairs,
                escalated: after.escalated - before.escalated,
                uncorrectable: after.uncorrectable - before.uncorrectable,
            },
            needs_mac_correction: needs,
            uncorrectable: bad,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EngineConfig, MacPlacement, MemoryEncryptionEngine};
    use ame_dram::storage::StoredBlock;

    fn mac_block(tag: u64, data: [u8; 64]) -> StoredBlock {
        StoredBlock {
            data,
            sideband: MacSideband::new(tag, &data).to_bytes(),
        }
    }

    #[test]
    fn clean_memory_scrubs_clean() {
        let mut mem = DramStorage::new();
        for i in 0..8u64 {
            mem.write(i * 64, mac_block(i, [i as u8; 64]));
        }
        let mut s = Scrubber::new(ScrubMode::MacInEcc);
        let report = s.sweep(&mut mem, (0..8).map(|i| i * 64));
        assert_eq!(report.stats.scanned, 8);
        assert_eq!(report.stats.parity_mismatches, 0);
        assert!(report.needs_mac_correction.is_empty());
    }

    #[test]
    fn parity_bit_flags_single_data_flip() {
        let mut mem = DramStorage::new();
        mem.write(0, mac_block(7, [1; 64]));
        mem.flip_data_bit(0, 200);
        let mut s = Scrubber::new(ScrubMode::MacInEcc);
        assert_eq!(s.scrub_block(&mut mem, 0), BlockScrub::NeedsMacCorrection);
        assert_eq!(s.stats().parity_mismatches, 1);
    }

    #[test]
    fn parity_bit_misses_even_flips_by_design() {
        // The cheap scan cannot see an even number of flips — those are
        // caught by the MAC check on the next real access (Figure 3's
        // "full error detection" still holds end to end).
        let mut mem = DramStorage::new();
        mem.write(0, mac_block(7, [1; 64]));
        mem.flip_data_bit(0, 10);
        mem.flip_data_bit(0, 20);
        let mut s = Scrubber::new(ScrubMode::MacInEcc);
        assert_eq!(s.scrub_block(&mut mem, 0), BlockScrub::Clean);
    }

    #[test]
    fn mac_field_flip_repaired_without_keys() {
        let mut mem = DramStorage::new();
        let tag = 0x00ab_cdef_1234_5678 & MacSideband::TAG_MASK;
        mem.write(0, mac_block(tag, [9; 64]));
        for bit in [0u32, 31, 55, 58, 62] {
            mem.flip_sideband_bit(0, bit);
            let mut s = Scrubber::new(ScrubMode::MacInEcc);
            assert_eq!(
                s.scrub_block(&mut mem, 0),
                BlockScrub::Repaired,
                "bit {bit}"
            );
            // The stored tag is whole again.
            let sb = MacSideband::from_bytes(mem.read(0).sideband);
            assert_eq!(sb.raw_tag(), tag);
            assert!(sb.recover_tag().is_clean());
        }
    }

    #[test]
    fn double_mac_flip_is_uncorrectable() {
        let mut mem = DramStorage::new();
        mem.write(0, mac_block(1, [2; 64]));
        mem.flip_sideband_bit(0, 5);
        mem.flip_sideband_bit(0, 40);
        let mut s = Scrubber::new(ScrubMode::MacInEcc);
        let report = s.sweep(&mut mem, [0].into_iter());
        assert_eq!(report.uncorrectable, vec![0]);
    }

    #[test]
    fn standard_mode_repairs_in_place() {
        let mut mem = DramStorage::new();
        let data = [0x3c; 64];
        mem.write(
            0,
            StoredBlock {
                data,
                sideband: StandardSideband::encode(&data).to_bytes(),
            },
        );
        mem.flip_data_bit(0, 77);
        let mut s = Scrubber::new(ScrubMode::StandardEcc);
        assert_eq!(s.scrub_block(&mut mem, 0), BlockScrub::Repaired);
        assert_eq!(mem.read(0).data, data);
        // Second pass: clean.
        assert_eq!(s.scrub_block(&mut mem, 0), BlockScrub::Clean);
    }

    #[test]
    fn standard_mode_double_error_uncorrectable() {
        let mut mem = DramStorage::new();
        let data = [0x3c; 64];
        mem.write(
            0,
            StoredBlock {
                data,
                sideband: StandardSideband::encode(&data).to_bytes(),
            },
        );
        mem.flip_data_bit(0, 0);
        mem.flip_data_bit(0, 1);
        let mut s = Scrubber::new(ScrubMode::StandardEcc);
        assert_eq!(s.scrub_block(&mut mem, 0), BlockScrub::Uncorrectable);
    }

    #[test]
    fn scrub_then_engine_fixes_escalated_block() {
        // End-to-end: the scrubber flags a faulted block; the engine's
        // next read repairs it via flip-and-check; a re-scrub is clean.
        let mut engine = MemoryEncryptionEngine::new(EngineConfig {
            mac_placement: MacPlacement::MacInEcc,
            ..EngineConfig::default()
        });
        engine.write_block(0x40, &[0xaa; 64]);
        engine.tamper_data_bit(0x40, 300);

        let report = {
            let mut s = Scrubber::new(ScrubMode::MacInEcc);
            s.sweep(engine.storage_mut(), [0x40].into_iter())
        };
        assert_eq!(report.needs_mac_correction, vec![0x40]);

        // Engine access repairs and scrubs the block back to memory.
        assert_eq!(engine.read_block(0x40).unwrap(), [0xaa; 64]);
        let mut s = Scrubber::new(ScrubMode::MacInEcc);
        let report = s.sweep(engine.storage_mut(), [0x40].into_iter());
        assert!(report.needs_mac_correction.is_empty());
        assert_eq!(report.stats.parity_mismatches, 0);
    }

    #[test]
    fn sweep_report_counts_are_per_sweep() {
        let mut mem = DramStorage::new();
        mem.write(0, mac_block(1, [1; 64]));
        mem.write(64, mac_block(2, [2; 64]));
        mem.flip_sideband_bit(0, 3);
        let mut s = Scrubber::new(ScrubMode::MacInEcc);
        let r1 = s.sweep(&mut mem, [0u64, 64].into_iter());
        assert_eq!(r1.stats.scanned, 2);
        assert_eq!(r1.stats.mac_repairs, 1);
        let r2 = s.sweep(&mut mem, [0u64, 64].into_iter());
        assert_eq!(r2.stats.mac_repairs, 0, "second sweep is clean");
        assert_eq!(s.stats().scanned, 4, "lifetime stats accumulate");
    }
}
