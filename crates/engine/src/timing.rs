//! The timing/traffic model of the memory encryption engine, used by the
//! Figure 8 performance experiments.
//!
//! For every last-level-cache miss the engine decides which DRAM
//! transactions happen and when the verified data is available:
//!
//! * **data fetch** — always one DRAM read;
//! * **counter fetch** — a bottom-up walk of the Bonsai Merkle tree
//!   through the 32 KB metadata cache; the walk stops at the first cached
//!   (= already verified) ancestor, and each miss costs a dependent DRAM
//!   read. Delta-encoded counters make the leaf level 8x denser *and* the
//!   tree one level shallower (Section 5.2);
//! * **MAC fetch** — one extra (cacheable) DRAM read in separate-MAC mode;
//!   free in MAC-in-ECC mode because the tag rides the 72-bit ECC bus with
//!   the data (Section 3.1);
//! * **keystream generation** — AES over (address, counter) overlaps the
//!   data fetch and starts as soon as the counter is available (plus the
//!   2-cycle delta decode, Section 5.3);
//! * **re-encryption sweeps** — counter-group overflows trigger a
//!   background read-modify-write sweep of the whole group, charged to the
//!   DRAM banks but not to the requesting core (Section 5.2: "re-encryption
//!   can be performed without completely suspending the rest of the
//!   system").

use crate::{CounterSchemeKind, MacPlacement};
use ame_cache::{AccessKind, Cache, CacheConfig};
use ame_counters::packing::DECODE_LATENCY_CYCLES;
use ame_counters::{CounterScheme, CounterStats, WriteOutcome};
use ame_dram::timing::{DramTiming, RequestKind};
use ame_tree::TreeGeometry;

/// What protection the memory system applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protection {
    /// No encryption, no integrity — raw DRAM latency.
    Unprotected,
    /// Counter-mode encryption + Bonsai Merkle tree.
    Bmt {
        /// Where MACs live.
        mac: MacPlacement,
        /// Counter representation (sets tree depth and leaf density).
        counters: CounterSchemeKind,
    },
    /// The pre-BMT design (Gassend et al., HPCA'03 / AEGIS): the Merkle
    /// tree hashes the *data blocks themselves*, so its leaf level spans
    /// the whole region instead of just the counters. Counters are still
    /// fetched for decryption. Section 2.2: protecting the counters
    /// instead "results in a significantly smaller tree" — this variant
    /// exists to measure exactly that difference.
    DataMerkle {
        /// Counter representation (for the decrypt-side fetch).
        counters: CounterSchemeKind,
    },
}

/// Timing-model configuration (defaults = Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimingConfig {
    /// Protection scheme.
    pub protection: Protection,
    /// Bytes of protected memory (Table 1: 512 MB).
    pub region_bytes: u64,
    /// Counter/MAC metadata cache (Table 1: 32 KB, 8-way).
    pub metadata_cache: CacheConfig,
    /// AES keystream latency in cycles (overlapped with the data fetch).
    pub aes_latency: u64,
    /// Final MAC compare latency in cycles.
    pub mac_check_latency: u64,
    /// If `true` (the default, as in SGX-class engines), data is released
    /// to the core as soon as its own counter and MAC check out, while
    /// upper tree levels verify in the background; the walk still issues
    /// its DRAM reads (traffic + bank occupancy) but is off the critical
    /// path. If `false`, the core waits for the full bottom-up walk.
    pub speculative_verification: bool,
}

impl Default for TimingConfig {
    fn default() -> Self {
        Self {
            protection: Protection::Bmt {
                mac: MacPlacement::MacInEcc,
                counters: CounterSchemeKind::Delta,
            },
            region_bytes: 512 << 20,
            metadata_cache: CacheConfig::new(32 * 1024, 8, 64),
            aes_latency: 40,
            mac_check_latency: 2,
            speculative_verification: true,
        }
    }
}

impl CounterSchemeKind {
    /// Storage cost in bits per data block, as seen by tree geometry
    /// (monolithic counters occupy full 8-byte slots).
    #[must_use]
    pub fn storage_bits_per_block(self) -> f64 {
        match self {
            CounterSchemeKind::Monolithic => 64.0,
            CounterSchemeKind::Split | CounterSchemeKind::Delta | CounterSchemeKind::DualLength => {
                8.0
            }
        }
    }

    /// Counter-decode latency on the read path (the paper's synthesized
    /// 2-cycle decoder for delta encodings; plain counters need none).
    #[must_use]
    pub fn decode_latency(self) -> u64 {
        match self {
            CounterSchemeKind::Monolithic | CounterSchemeKind::Split => 0,
            CounterSchemeKind::Delta | CounterSchemeKind::DualLength => DECODE_LATENCY_CYCLES,
        }
    }
}

/// Read-latency distribution: the shared log₂-bucket telemetry
/// histogram (quantiles resolve to a bucket upper bound clamped to the
/// exact max; buckets merge across engines for fleet-wide roll-ups).
pub use ame_telemetry::Histogram as LatencyHistogram;

/// Traffic and latency statistics of the timing engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TimingStats {
    /// LLC read misses served.
    pub reads: u64,
    /// LLC writebacks served.
    pub writes: u64,
    /// Data-block DRAM reads (incl. re-encryption sweeps).
    pub data_dram_reads: u64,
    /// Data-block DRAM writes (incl. re-encryption sweeps).
    pub data_dram_writes: u64,
    /// Counter/tree-node DRAM reads.
    pub meta_dram_reads: u64,
    /// Counter/tree-node DRAM writes (metadata-cache writebacks).
    pub meta_dram_writes: u64,
    /// Separate-MAC DRAM reads (always 0 with MAC-in-ECC).
    pub mac_dram_reads: u64,
    /// Counter-group re-encryption events.
    pub reencryptions: u64,
    /// Blocks rewritten by re-encryption sweeps.
    pub reencrypted_blocks: u64,
    /// Cycles overflow events waited in the re-encryption engine's
    /// overflow buffer behind earlier sweeps (Section 4.4).
    pub reencryption_queue_cycles: u64,
    /// Sum of read-miss latencies (cycles), for averaging.
    pub total_read_latency: u64,
}

impl TimingStats {
    /// Mean verified-read latency in cycles.
    #[must_use]
    pub fn mean_read_latency(&self) -> f64 {
        if self.reads == 0 {
            0.0
        } else {
            self.total_read_latency as f64 / self.reads as f64
        }
    }

    /// Total DRAM transactions generated.
    #[must_use]
    pub fn dram_transactions(&self) -> u64 {
        self.data_dram_reads
            + self.data_dram_writes
            + self.meta_dram_reads
            + self.meta_dram_writes
            + self.mac_dram_reads
    }
}

impl std::fmt::Display for TimingStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "reads={} writes={} dram[data {}r/{}w meta {}r/{}w mac {}r] reenc={} mean-read={:.1}cy",
            self.reads,
            self.writes,
            self.data_dram_reads,
            self.data_dram_writes,
            self.meta_dram_reads,
            self.meta_dram_writes,
            self.mac_dram_reads,
            self.reencryptions,
            self.mean_read_latency()
        )
    }
}

impl ame_telemetry::Metrics for TimingStats {
    fn record(&self, sink: &mut dyn ame_telemetry::MetricSink) {
        sink.counter("reads", self.reads);
        sink.counter("writes", self.writes);
        sink.counter("data_dram_reads", self.data_dram_reads);
        sink.counter("data_dram_writes", self.data_dram_writes);
        sink.counter("meta_dram_reads", self.meta_dram_reads);
        sink.counter("meta_dram_writes", self.meta_dram_writes);
        sink.counter("mac_dram_reads", self.mac_dram_reads);
        sink.counter("reencryptions", self.reencryptions);
        sink.counter("reencrypted_blocks", self.reencrypted_blocks);
        sink.counter("reencryption_queue_cycles", self.reencryption_queue_cycles);
        sink.counter("total_read_latency", self.total_read_latency);
        sink.counter("dram_transactions", self.dram_transactions());
        sink.gauge("mean_read_latency", self.mean_read_latency());
    }
}

impl ame_telemetry::Metrics for TimingEngine {
    /// Reports the engine as one telemetry scope: traffic counters at the
    /// root, the counter scheme under `counters/`, the metadata cache
    /// under `metadata_cache/`, and the verified-read latency
    /// distribution as `read_latency`.
    fn record(&self, sink: &mut dyn ame_telemetry::MetricSink) {
        ame_telemetry::Metrics::record(&self.stats, sink);
        sink.histogram("read_latency", &self.read_latency);
        let counters = self.counter_stats();
        sink.counter("counters/writes", counters.writes);
        sink.counter("counters/resets", counters.resets);
        sink.counter("counters/reencodes", counters.reencodes);
        sink.counter("counters/expansions", counters.expansions);
        sink.counter("counters/reencryptions", counters.reencryptions);
        if let Some(p) = &self.protected {
            let cache = p.meta_cache.stats();
            sink.counter("metadata_cache/accesses", cache.accesses);
            sink.counter("metadata_cache/hits", cache.hits);
            sink.counter("metadata_cache/misses", cache.misses);
            sink.counter("metadata_cache/evictions", cache.evictions);
            sink.counter("metadata_cache/writebacks", cache.writebacks);
            sink.gauge("metadata_cache/hit_rate", cache.hit_rate());
        }
    }
}

/// The per-access timing model of the encryption engine.
pub struct TimingEngine {
    config: TimingConfig,
    /// `None` when unprotected.
    protected: Option<ProtectedState>,
    stats: TimingStats,
    read_latency: LatencyHistogram,
}

struct ProtectedState {
    mac: MacPlacement,
    counters_kind: CounterSchemeKind,
    geometry: TreeGeometry,
    /// Present for [`Protection::DataMerkle`]: the (much larger) tree
    /// whose leaves are per-data-block hashes.
    data_tree: Option<TreeGeometry>,
    meta_cache: Cache,
    scheme: Box<dyn CounterScheme>,
    /// Base physical address of counter/tree metadata (placed after data).
    meta_base: u64,
    /// Base physical address of the separate MAC region.
    mac_base: u64,
    /// Base physical address of the data-Merkle-tree nodes.
    data_tree_base: u64,
    /// The background re-encryption engine finishes its current sweep at
    /// this cycle; queued overflows start after it (Section 4.4's
    /// overflow buffer + re-encryption engine).
    reenc_busy_until: u64,
}

impl std::fmt::Debug for TimingEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TimingEngine")
            .field("config", &self.config)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl TimingEngine {
    /// Builds the timing engine for a configuration.
    #[must_use]
    pub fn new(config: TimingConfig) -> Self {
        let protected = match config.protection {
            Protection::Unprotected => None,
            Protection::Bmt { mac, counters } => {
                let geometry = TreeGeometry::for_region(
                    config.region_bytes,
                    counters.storage_bits_per_block(),
                );
                let meta_base = config.region_bytes;
                let mac_base = meta_base + geometry.total_metadata_bytes();
                Some(ProtectedState {
                    mac,
                    counters_kind: counters,
                    geometry,
                    data_tree: None,
                    meta_cache: Cache::new(config.metadata_cache),
                    scheme: counters.build(),
                    meta_base,
                    mac_base,
                    data_tree_base: 0,
                    reenc_busy_until: 0,
                })
            }
            Protection::DataMerkle { counters } => {
                let geometry = TreeGeometry::for_region(
                    config.region_bytes,
                    counters.storage_bits_per_block(),
                );
                // The data tree's "leaf storage" is an 8-byte hash per
                // data block: identical geometry math with 64 bits/block.
                let data_tree = TreeGeometry::for_region(config.region_bytes, 64.0);
                let meta_base = config.region_bytes;
                let mac_base = meta_base + geometry.total_metadata_bytes();
                let data_tree_base = mac_base;
                Some(ProtectedState {
                    mac: MacPlacement::SeparateMac,
                    counters_kind: counters,
                    geometry,
                    data_tree: Some(data_tree),
                    meta_cache: Cache::new(config.metadata_cache),
                    scheme: counters.build(),
                    meta_base,
                    mac_base,
                    data_tree_base,
                    reenc_busy_until: 0,
                })
            }
        };
        Self {
            config,
            protected,
            stats: TimingStats::default(),
            read_latency: LatencyHistogram::default(),
        }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &TimingConfig {
        &self.config
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> TimingStats {
        self.stats
    }

    /// Clears traffic statistics while keeping the metadata cache and
    /// counter state warm (counter-scheme statistics stay cumulative).
    pub fn reset_stats(&mut self) {
        self.stats = TimingStats::default();
        self.read_latency.reset();
        if let Some(p) = &mut self.protected {
            p.meta_cache.reset_stats();
        }
    }

    /// Distribution of verified-read latencies.
    #[must_use]
    pub fn read_latency(&self) -> &LatencyHistogram {
        &self.read_latency
    }

    /// Counter-scheme statistics (empty when unprotected).
    #[must_use]
    pub fn counter_stats(&self) -> CounterStats {
        self.protected
            .as_ref()
            .map(|p| p.scheme.stats())
            .unwrap_or_default()
    }

    /// Off-chip tree levels of the active integrity tree (0 when
    /// unprotected; the data tree's depth for [`Protection::DataMerkle`]).
    #[must_use]
    pub fn tree_levels(&self) -> usize {
        self.protected.as_ref().map_or(0, |p| {
            p.data_tree
                .as_ref()
                .map_or(p.geometry.off_chip_levels(), TreeGeometry::off_chip_levels)
        })
    }

    /// Metadata-cache hit rate so far (0 when unprotected).
    #[must_use]
    pub fn metadata_hit_rate(&self) -> f64 {
        self.protected
            .as_ref()
            .map_or(0.0, |p| p.meta_cache.stats().hit_rate())
    }

    /// Serves an LLC *read miss* for the block at `addr`, issued at cycle
    /// `now`; returns the cycle at which verified data is available.
    pub fn read_miss(&mut self, addr: u64, now: u64, dram: &mut DramTiming) -> u64 {
        self.stats.reads += 1;
        let addr = addr % self.config.region_bytes;
        self.stats.data_dram_reads += 1;
        let t_data = dram.access(addr, RequestKind::Read, now);

        let Some(p) = &mut self.protected else {
            self.stats.total_read_latency += t_data - now;
            self.read_latency.record(t_data - now);
            return t_data;
        };

        // --- counter fetch ---
        let block = addr / 64;
        let leaf = block / p.scheme.blocks_per_metadata_block() as u64;
        let mut t_walk = now;
        let mut t_ctr = now;
        if p.data_tree.is_none() {
            // BMT: bottom-up walk of the counter tree through the
            // metadata cache.
            let mut node = leaf;
            for level in 0..p.geometry.off_chip_levels() {
                let node_addr = p.meta_base + p.geometry.node_offset(level, node);
                let res = p.meta_cache.access(node_addr, AccessKind::Read);
                if let Some(victim) = res.writeback() {
                    self.stats.meta_dram_writes += 1;
                    dram.access(victim, RequestKind::Write, t_walk);
                }
                if res.is_miss() {
                    self.stats.meta_dram_reads += 1;
                    t_walk = dram.access(node_addr, RequestKind::Read, t_walk);
                    if level == 0 {
                        t_ctr = t_walk;
                    }
                } else {
                    // A cached node is already verified: the walk stops here.
                    if level == 0 {
                        t_ctr = now;
                    }
                    break;
                }
                node /= p.geometry.arity as u64;
            }
        } else {
            // Data-Merkle design: counters are a flat (tree-less) fetch...
            let leaf_addr = p.meta_base + p.geometry.node_offset(0, leaf);
            let res = p.meta_cache.access(leaf_addr, AccessKind::Read);
            if let Some(victim) = res.writeback() {
                self.stats.meta_dram_writes += 1;
                dram.access(victim, RequestKind::Write, now);
            }
            if res.is_miss() {
                self.stats.meta_dram_reads += 1;
                t_ctr = dram.access(leaf_addr, RequestKind::Read, now);
            }
            // ...and integrity comes from walking the (much deeper-reaching)
            // tree over the data's own hashes.
            let Some(dt) = p.data_tree.as_ref() else {
                unreachable!("checked above")
            };
            let mut node = block / dt.arity as u64;
            t_walk = t_ctr.max(now);
            for level in 0..dt.off_chip_levels() {
                let node_addr = p.data_tree_base + dt.node_offset(level, node);
                let res = p.meta_cache.access(node_addr, AccessKind::Read);
                if let Some(victim) = res.writeback() {
                    self.stats.meta_dram_writes += 1;
                    dram.access(victim, RequestKind::Write, t_walk);
                }
                if res.is_miss() {
                    self.stats.meta_dram_reads += 1;
                    t_walk = dram.access(node_addr, RequestKind::Read, t_walk);
                } else {
                    break;
                }
                node /= dt.arity as u64;
            }
        }

        // --- MAC fetch ---
        let t_mac = match p.mac {
            MacPlacement::MacInEcc => t_data, // rides the ECC bus
            MacPlacement::SeparateMac => {
                let mac_line = p.mac_base + (block / 8) * 64;
                let res = p.meta_cache.access(mac_line, AccessKind::Read);
                if let Some(victim) = res.writeback() {
                    self.stats.meta_dram_writes += 1;
                    dram.access(victim, RequestKind::Write, now);
                }
                if res.is_miss() {
                    self.stats.mac_dram_reads += 1;
                    dram.access(mac_line, RequestKind::Read, now)
                } else {
                    now
                }
            }
        };

        // Keystream generation starts once the counter is decoded; the
        // final XOR + MAC compare happen when both data and pad are ready.
        // With speculative verification the upper-level walk completes in
        // the background and does not gate the core.
        let t_pad = t_ctr + p.counters_kind.decode_latency() + self.config.aes_latency;
        let walk_gate = if self.config.speculative_verification {
            t_ctr
        } else {
            t_walk
        };
        let ready = t_data.max(t_pad).max(walk_gate).max(t_mac) + self.config.mac_check_latency;
        self.stats.total_read_latency += ready - now;
        self.read_latency.record(ready - now);
        ready
    }

    /// Serves an LLC *writeback* of the block at `addr` at cycle `now`;
    /// returns the DRAM completion cycle (writes are off the critical
    /// path — callers should not stall on it).
    pub fn write_back(&mut self, addr: u64, now: u64, dram: &mut DramTiming) -> u64 {
        self.stats.writes += 1;
        let addr = addr % self.config.region_bytes;

        if let Some(p) = &mut self.protected {
            let block = addr / 64;
            // Counter increment: dirty the leaf metadata line (fetched on
            // miss, write-allocate). Upper tree levels are re-MAC'd lazily
            // when dirty metadata lines are evicted (charged as metadata
            // writebacks).
            let leaf = block / p.scheme.blocks_per_metadata_block() as u64;
            let leaf_addr = p.meta_base + p.geometry.node_offset(0, leaf);
            let res = p.meta_cache.access(leaf_addr, AccessKind::Write);
            if let Some(victim) = res.writeback() {
                self.stats.meta_dram_writes += 1;
                dram.access(victim, RequestKind::Write, now);
            }
            if res.is_miss() {
                self.stats.meta_dram_reads += 1;
                dram.access(leaf_addr, RequestKind::Read, now);
            }

            // Data-Merkle design: a write dirties the whole hash path —
            // the write-amplification that motivated Bonsai trees.
            if let Some(dt) = &p.data_tree {
                let mut node = block / dt.arity as u64;
                for level in 0..dt.off_chip_levels() {
                    let node_addr = p.data_tree_base + dt.node_offset(level, node);
                    let res = p.meta_cache.access(node_addr, AccessKind::Write);
                    if let Some(victim) = res.writeback() {
                        self.stats.meta_dram_writes += 1;
                        dram.access(victim, RequestKind::Write, now);
                    }
                    if res.is_miss() {
                        self.stats.meta_dram_reads += 1;
                        dram.access(node_addr, RequestKind::Read, now);
                    }
                    node /= dt.arity as u64;
                }
            }

            // Separate-MAC mode also dirties the MAC line.
            if p.mac == MacPlacement::SeparateMac && p.data_tree.is_none() {
                let mac_line = p.mac_base + (block / 8) * 64;
                let res = p.meta_cache.access(mac_line, AccessKind::Write);
                if let Some(victim) = res.writeback() {
                    self.stats.meta_dram_writes += 1;
                    dram.access(victim, RequestKind::Write, now);
                }
                if res.is_miss() {
                    self.stats.mac_dram_reads += 1;
                    dram.access(mac_line, RequestKind::Read, now);
                }
            }

            // Counter bump; overflow may trigger a background group sweep.
            let outcome = p.scheme.record_write(block);
            if let WriteOutcome::Reencrypted {
                group,
                old_counters,
                ..
            } = &outcome
            {
                self.stats.reencryptions += 1;
                // The overflow buffer hands groups to the re-encryption
                // engine one at a time; a new overflow queues behind the
                // sweep in progress (Section 4.4).
                let mut t_bg = now.max(p.reenc_busy_until);
                self.stats.reencryption_queue_cycles += t_bg - now;
                let bpg = p.scheme.blocks_per_group() as u64;
                for i in 0..old_counters.len() as u64 {
                    let baddr = ((group * bpg + i) * 64) % self.config.region_bytes;
                    self.stats.data_dram_reads += 1;
                    t_bg = dram.access(baddr, RequestKind::Read, t_bg);
                    self.stats.data_dram_writes += 1;
                    t_bg = dram.access(baddr, RequestKind::Write, t_bg);
                    self.stats.reencrypted_blocks += 1;
                }
                p.reenc_busy_until = t_bg;
            }
        }

        self.stats.data_dram_writes += 1;
        dram.access(addr, RequestKind::Write, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram() -> DramTiming {
        DramTiming::new(ame_dram::timing::DramConfig::default())
    }

    fn engine(protection: Protection) -> TimingEngine {
        TimingEngine::new(TimingConfig {
            protection,
            ..TimingConfig::default()
        })
    }

    #[test]
    fn unprotected_is_raw_dram() {
        let mut e = engine(Protection::Unprotected);
        let mut d = dram();
        let t = e.read_miss(0x1000, 0, &mut d);
        assert_eq!(t, 44 + 44 + 16); // closed-bank read
        assert_eq!(e.stats().meta_dram_reads, 0);
    }

    #[test]
    fn tree_depth_matches_paper() {
        let mono = engine(Protection::Bmt {
            mac: MacPlacement::SeparateMac,
            counters: CounterSchemeKind::Monolithic,
        });
        assert_eq!(mono.tree_levels(), 5);
        let delta = engine(Protection::Bmt {
            mac: MacPlacement::MacInEcc,
            counters: CounterSchemeKind::Delta,
        });
        assert_eq!(delta.tree_levels(), 4);
    }

    #[test]
    fn cold_read_walks_whole_tree() {
        let mut e = engine(Protection::Bmt {
            mac: MacPlacement::MacInEcc,
            counters: CounterSchemeKind::Delta,
        });
        let mut d = dram();
        e.read_miss(0x1000, 0, &mut d);
        assert_eq!(e.stats().meta_dram_reads, 4, "one read per off-chip level");
        assert_eq!(e.stats().mac_dram_reads, 0, "MAC rides the ECC bus");
    }

    #[test]
    fn warm_read_skips_walk() {
        let mut e = engine(Protection::Bmt {
            mac: MacPlacement::MacInEcc,
            counters: CounterSchemeKind::Delta,
        });
        let mut d = dram();
        let t1 = e.read_miss(0x1000, 0, &mut d);
        let before = e.stats().meta_dram_reads;
        // Neighbour block: same counter leaf (64-block groups), cached.
        // A fresh DRAM isolates the latency from the background walk's
        // residual bank occupancy.
        let mut d2 = dram();
        let t2 = e.read_miss(0x1040, 0, &mut d2);
        assert_eq!(e.stats().meta_dram_reads, before, "leaf hit, no walk");
        assert!(t2 < t1, "warm read ({t2}) is faster than cold read ({t1})");
    }

    #[test]
    fn separate_mac_costs_extra_reads() {
        let mut sep = engine(Protection::Bmt {
            mac: MacPlacement::SeparateMac,
            counters: CounterSchemeKind::Monolithic,
        });
        let mut d = dram();
        sep.read_miss(0x1000, 0, &mut d);
        assert_eq!(sep.stats().mac_dram_reads, 1);
    }

    #[test]
    fn mac_in_ecc_read_is_faster_than_separate() {
        let mut d1 = dram();
        let mut sep = engine(Protection::Bmt {
            mac: MacPlacement::SeparateMac,
            counters: CounterSchemeKind::Monolithic,
        });
        let t_sep = sep.read_miss(0x40, 0, &mut d1);

        let mut d2 = dram();
        let mut mie = engine(Protection::Bmt {
            mac: MacPlacement::MacInEcc,
            counters: CounterSchemeKind::Monolithic,
        });
        let t_mie = mie.read_miss(0x40, 0, &mut d2);
        assert!(
            t_mie <= t_sep,
            "MAC-in-ECC must not be slower ({t_mie} vs {t_sep})"
        );
    }

    #[test]
    fn delta_counters_cover_more_blocks_per_leaf() {
        let mut e = engine(Protection::Bmt {
            mac: MacPlacement::MacInEcc,
            counters: CounterSchemeKind::Delta,
        });
        let mut d = dram();
        // 64 consecutive blocks share one counter leaf: exactly one leaf
        // fetch for all of them.
        let mut t = 0;
        for b in 0..64u64 {
            t = e.read_miss(b * 64, t, &mut d);
        }
        // 4 levels on the first walk; later reads hit the cached leaf.
        assert_eq!(e.stats().meta_dram_reads, 4);

        let mut mono = engine(Protection::Bmt {
            mac: MacPlacement::MacInEcc,
            counters: CounterSchemeKind::Monolithic,
        });
        let mut d2 = dram();
        let mut t = 0;
        for b in 0..64u64 {
            t = mono.read_miss(b * 64, t, &mut d2);
        }
        // Monolithic: 8 blocks per leaf -> 8 leaf fetches (+ higher levels).
        assert!(mono.stats().meta_dram_reads > e.stats().meta_dram_reads);
    }

    #[test]
    fn writeback_overflow_triggers_background_sweep() {
        let mut e = engine(Protection::Bmt {
            mac: MacPlacement::MacInEcc,
            counters: CounterSchemeKind::Split,
        });
        let mut d = dram();
        let mut now = 0;
        for _ in 0..128 {
            now = e.write_back(0x0, now, &mut d);
        }
        assert_eq!(e.stats().reencryptions, 1);
        assert_eq!(e.stats().reencrypted_blocks, 64);
        // Sweep traffic: 64 reads + 64 writes on top of the 128 data
        // writes.
        assert_eq!(e.stats().data_dram_reads, 64);
        assert_eq!(e.stats().data_dram_writes, 128 + 64);
    }

    #[test]
    fn delta_avoids_sweep_on_uniform_writes() {
        let mut e = engine(Protection::Bmt {
            mac: MacPlacement::MacInEcc,
            counters: CounterSchemeKind::Delta,
        });
        let mut d = dram();
        let mut now = 0;
        // Uniform sweeps over a group: deltas converge and reset.
        for _ in 0..4 {
            for b in 0..64u64 {
                now = e.write_back(b * 64, now, &mut d);
            }
        }
        assert_eq!(e.stats().reencryptions, 0);
        assert!(e.counter_stats().resets >= 4);
    }

    #[test]
    fn latency_histogram_quantiles() {
        let mut h = LatencyHistogram::default();
        assert_eq!(h.quantile(0.5), 0);
        for v in [10u64, 20, 30, 40, 50, 60, 70, 80, 90, 5000] {
            h.record(v);
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.max(), 5000);
        // p50 lands in the log2 bucket 32..=63 (upper bound 63).
        assert_eq!(h.quantile(0.5), 63);
        // p100 is clamped to the exact max.
        assert_eq!(h.quantile(1.0), 5000);
        h.reset();
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn engine_records_read_latencies() {
        let mut e = engine(Protection::Bmt {
            mac: MacPlacement::MacInEcc,
            counters: CounterSchemeKind::Delta,
        });
        let mut d = dram();
        let mut t = 0;
        for b in 0..32u64 {
            t = e.read_miss(b * 64, t, &mut d);
        }
        assert_eq!(e.read_latency().count(), 32);
        assert!(e.read_latency().quantile(0.95) >= e.read_latency().quantile(0.5));
        e.reset_stats();
        assert_eq!(e.read_latency().count(), 0);
    }

    #[test]
    fn data_merkle_tree_is_deeper_and_noisier() {
        let mut dm = engine(Protection::DataMerkle {
            counters: CounterSchemeKind::Monolithic,
        });
        let mut bmt = engine(Protection::Bmt {
            mac: MacPlacement::SeparateMac,
            counters: CounterSchemeKind::Monolithic,
        });
        // Same-size region: the data tree's leaf level spans hashes of
        // the *data*, giving the same depth as the monolithic counter
        // tree here (both 64 bits/block) — the difference shows on the
        // write path and cache pressure.
        assert_eq!(dm.tree_levels(), 5);
        assert_eq!(bmt.tree_levels(), 5);

        // Writes: data-Merkle dirties the whole hash path.
        let mut d1 = dram();
        let mut d2 = dram();
        let mut t1 = 0;
        let mut t2 = 0;
        for b in 0..64u64 {
            t1 = dm.write_back(b * 4096, t1, &mut d1); // distinct pages
            t2 = bmt.write_back(b * 4096, t2, &mut d2);
        }
        assert!(
            dm.stats().meta_dram_reads > bmt.stats().meta_dram_reads,
            "data-tree writes must touch more metadata ({} vs {})",
            dm.stats().meta_dram_reads,
            bmt.stats().meta_dram_reads
        );
    }

    #[test]
    fn bonsai_beats_data_merkle_end_to_end() {
        // Mixed read/write stream over scattered addresses: the BMT
        // configuration must finish sooner (Section 2.2's motivation).
        let mut dm = engine(Protection::DataMerkle {
            counters: CounterSchemeKind::Monolithic,
        });
        let mut bmt = engine(Protection::Bmt {
            mac: MacPlacement::SeparateMac,
            counters: CounterSchemeKind::Monolithic,
        });
        let mut d1 = dram();
        let mut d2 = dram();
        let (mut t1, mut t2) = (0u64, 0u64);
        for i in 0..400u64 {
            let addr = (i * 73_216) % (256 << 20);
            if i % 3 == 0 {
                dm.write_back(addr, t1, &mut d1);
                bmt.write_back(addr, t2, &mut d2);
            } else {
                t1 = dm.read_miss(addr, t1, &mut d1);
                t2 = bmt.read_miss(addr, t2, &mut d2);
            }
        }
        assert!(
            t2 <= t1,
            "BMT {t2} must not be slower than data-Merkle {t1}"
        );
    }

    #[test]
    fn mean_latency_tracks() {
        let mut e = engine(Protection::Unprotected);
        let mut d = dram();
        e.read_miss(0, 0, &mut d);
        assert!(e.stats().mean_read_latency() > 0.0);
        assert_eq!(e.stats().dram_transactions(), 1);
    }
}
