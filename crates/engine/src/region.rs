//! Byte-granular access on top of the block engine.
//!
//! The engine's native unit is the 64-byte block (one cache line / one
//! MAC / one counter). Real software reads and writes arbitrary byte
//! ranges, which means sub-block writes are **read-modify-write**
//! operations: the enclosing block must be fetched and verified before
//! the modified block is re-encrypted under a fresh counter — a partial
//! write can never bypass verification, or an attacker could use it to
//! launder a tampered block back to validity.
//!
//! [`SecureRegion`] provides that layer, plus the bounds discipline of a
//! fixed-size protected region.

use crate::{MemoryEncryptionEngine, ReadError, ReadRun, BLOCK_BYTES};

/// Errors from byte-granular region access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegionError {
    /// The range `[addr, addr + len)` does not fit the region.
    OutOfBounds {
        /// Requested start offset.
        addr: u64,
        /// Requested length.
        len: usize,
    },
    /// A block on the path failed verification.
    Read(ReadError),
}

impl std::fmt::Display for RegionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegionError::OutOfBounds { addr, len } => {
                write!(f, "range [{addr:#x}, +{len}) outside the protected region")
            }
            RegionError::Read(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RegionError {}

impl From<ReadError> for RegionError {
    fn from(e: ReadError) -> Self {
        RegionError::Read(e)
    }
}

/// A fixed-size protected region with byte-granular reads and writes.
///
/// # Example
///
/// ```
/// use ame_engine::region::SecureRegion;
/// use ame_engine::EngineConfig;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut region = SecureRegion::new(EngineConfig::default(), 1 << 20);
/// region.write_bytes(100, b"hello across a block boundary?")?;
/// let mut buf = [0u8; 5];
/// region.read_bytes(100, &mut buf)?;
/// assert_eq!(&buf, b"hello");
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SecureRegion {
    engine: MemoryEncryptionEngine,
    size: u64,
}

impl SecureRegion {
    /// Creates a zeroed protected region of `size` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero or not a multiple of the 64-byte block.
    #[must_use]
    pub fn new(config: crate::EngineConfig, size: u64) -> Self {
        assert!(
            size > 0 && size.is_multiple_of(BLOCK_BYTES as u64),
            "size must be whole blocks"
        );
        Self {
            engine: MemoryEncryptionEngine::new(config),
            size,
        }
    }

    /// Region capacity in bytes.
    #[must_use]
    pub fn size(&self) -> u64 {
        self.size
    }

    /// The engine underneath (statistics, tamper surface for tests).
    pub fn engine_mut(&mut self) -> &mut MemoryEncryptionEngine {
        &mut self.engine
    }

    /// Read-only view of the engine underneath (telemetry collection).
    #[must_use]
    pub fn engine(&self) -> &MemoryEncryptionEngine {
        &self.engine
    }

    fn check(&self, addr: u64, len: usize) -> Result<(), RegionError> {
        if addr
            .checked_add(len as u64)
            .is_none_or(|end| end > self.size)
        {
            return Err(RegionError::OutOfBounds { addr, len });
        }
        Ok(())
    }

    /// Reads `buf.len()` bytes starting at byte offset `addr`. Every
    /// touched block is verified.
    ///
    /// # Errors
    ///
    /// [`RegionError::OutOfBounds`] for a bad range;
    /// [`RegionError::Read`] if any block fails verification.
    pub fn read_bytes(&mut self, addr: u64, buf: &mut [u8]) -> Result<(), RegionError> {
        self.check(addr, buf.len())?;
        let mut filled = 0usize;
        while filled < buf.len() {
            let pos = addr + filled as u64;
            let block_base = pos & !(BLOCK_BYTES as u64 - 1);
            let offset = (pos - block_base) as usize;
            let take = (BLOCK_BYTES - offset).min(buf.len() - filled);
            let block = self.engine.read_block(block_base)?;
            buf[filled..filled + take].copy_from_slice(&block[offset..offset + take]);
            filled += take;
        }
        Ok(())
    }

    /// Writes a batch of block-aligned full-block stores through the
    /// engine's batched seal path (one pipelined keystream batch per
    /// overflow-free run). Equivalent to writing each block in order;
    /// the whole batch is bounds-checked before anything is written.
    ///
    /// # Errors
    ///
    /// [`RegionError::OutOfBounds`] if any address is unaligned or out
    /// of range — in that case no block of the batch is written.
    pub fn write_blocks(&mut self, items: &[(u64, [u8; BLOCK_BYTES])]) -> Result<(), RegionError> {
        for &(addr, _) in items {
            self.check(addr, BLOCK_BYTES)?;
            if !addr.is_multiple_of(BLOCK_BYTES as u64) {
                return Err(RegionError::OutOfBounds {
                    addr,
                    len: BLOCK_BYTES,
                });
            }
        }
        self.engine.write_blocks(items);
        Ok(())
    }

    /// Reads and verifies a run of block-aligned full-block loads through
    /// the engine's batched read path (one verified counter fetch per
    /// distinct metadata block, one pipelined keystream batch), with
    /// per-block sequential fallback on any anomaly. The whole run is
    /// bounds-checked before anything is read.
    ///
    /// # Errors
    ///
    /// [`RegionError::OutOfBounds`] if any address is unaligned or out of
    /// range — in that case no block of the run is read. Verification
    /// failures are reported *inside* the returned [`ReadRun`] so callers
    /// keep the successfully released prefix.
    pub fn read_blocks(&mut self, addrs: &[u64]) -> Result<ReadRun, RegionError> {
        for &addr in addrs {
            self.check(addr, BLOCK_BYTES)?;
            if !addr.is_multiple_of(BLOCK_BYTES as u64) {
                return Err(RegionError::OutOfBounds {
                    addr,
                    len: BLOCK_BYTES,
                });
            }
        }
        Ok(self.engine.read_blocks(addrs))
    }

    /// Atomically reads, verifies, transforms, and re-seals one aligned
    /// block, returning the pre-image. The seal reuses the verified
    /// read's counter fetch, so the whole operation costs one metadata
    /// lookup.
    ///
    /// # Errors
    ///
    /// [`RegionError::OutOfBounds`] for a bad or unaligned address;
    /// [`RegionError::Read`] if the verified read fails (nothing is
    /// written in that case).
    pub fn rmw_block(
        &mut self,
        addr: u64,
        f: impl FnOnce(&mut [u8; BLOCK_BYTES]),
    ) -> Result<[u8; BLOCK_BYTES], RegionError> {
        self.check(addr, BLOCK_BYTES)?;
        if !addr.is_multiple_of(BLOCK_BYTES as u64) {
            return Err(RegionError::OutOfBounds {
                addr,
                len: BLOCK_BYTES,
            });
        }
        Ok(self.engine.read_modify_write_block(addr, f)?)
    }

    /// Writes `data` starting at byte offset `addr`. Partially covered
    /// blocks are read-modify-written: the old contents are verified
    /// before the merged block is sealed under a fresh counter.
    ///
    /// # Errors
    ///
    /// [`RegionError::OutOfBounds`] for a bad range;
    /// [`RegionError::Read`] if a partially covered block fails
    /// verification (nothing is written in that case for that block
    /// onward).
    pub fn write_bytes(&mut self, addr: u64, data: &[u8]) -> Result<(), RegionError> {
        self.check(addr, data.len())?;
        let mut written = 0usize;
        while written < data.len() {
            let pos = addr + written as u64;
            let block_base = pos & !(BLOCK_BYTES as u64 - 1);
            let offset = (pos - block_base) as usize;
            let take = (BLOCK_BYTES - offset).min(data.len() - written);
            let mut block = if take == BLOCK_BYTES {
                // Full-block store: no RMW needed.
                [0u8; BLOCK_BYTES]
            } else {
                self.engine.read_block(block_base)?
            };
            block[offset..offset + take].copy_from_slice(&data[written..written + take]);
            self.engine.write_block(block_base, &block);
            written += take;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EngineConfig;

    fn region() -> SecureRegion {
        SecureRegion::new(EngineConfig::default(), 4096)
    }

    #[test]
    fn unaligned_roundtrip_across_blocks() {
        let mut r = region();
        let msg = b"the quick brown fox jumps over sixty-four byte boundaries easily";
        r.write_bytes(40, msg).unwrap(); // spans blocks 0 and 1
        let mut buf = vec![0u8; msg.len()];
        r.read_bytes(40, &mut buf).unwrap();
        assert_eq!(&buf, msg);
        // Untouched bytes around the write are still zero.
        let mut pre = [0u8; 40];
        r.read_bytes(0, &mut pre).unwrap();
        assert_eq!(pre, [0u8; 40]);
    }

    #[test]
    fn partial_write_preserves_neighbours() {
        let mut r = region();
        r.write_bytes(0, &[0xAA; 128]).unwrap();
        r.write_bytes(60, &[0xBB; 8]).unwrap(); // straddles the block edge
        let mut buf = [0u8; 128];
        r.read_bytes(0, &mut buf).unwrap();
        assert_eq!(&buf[..60], &[0xAA; 60][..]);
        assert_eq!(&buf[60..68], &[0xBB; 8][..]);
        assert_eq!(&buf[68..], &[0xAA; 60][..]);
    }

    #[test]
    fn full_block_write_skips_rmw_read() {
        let mut r = region();
        let reads_before = r.engine_mut().stats().reads;
        r.write_bytes(64, &[1; 64]).unwrap();
        assert_eq!(
            r.engine_mut().stats().reads,
            reads_before,
            "aligned store needs no read"
        );
        let reads_before = r.engine_mut().stats().reads;
        r.write_bytes(64, &[2; 32]).unwrap();
        assert!(
            r.engine_mut().stats().reads > reads_before,
            "partial store is RMW"
        );
    }

    #[test]
    fn bounds_are_enforced() {
        let mut r = region();
        assert!(matches!(
            r.write_bytes(4090, &[0; 10]),
            Err(RegionError::OutOfBounds { .. })
        ));
        let mut buf = [0u8; 8];
        assert!(matches!(
            r.read_bytes(u64::MAX - 3, &mut buf),
            Err(RegionError::OutOfBounds { .. })
        ));
        // Exactly-at-the-end is fine.
        assert!(r.write_bytes(4088, &[1; 8]).is_ok());
    }

    #[test]
    fn partial_write_cannot_launder_tampered_block() {
        // An attacker corrupts a block beyond repair; a later sub-block
        // write to it must fail instead of re-sealing attacker bits.
        let mut r = SecureRegion::new(
            EngineConfig {
                max_correctable_flips: 0,
                ..EngineConfig::default()
            },
            4096,
        );
        r.write_bytes(0, &[7; 64]).unwrap();
        r.engine_mut().tamper_data_bit(0, 13);
        assert!(matches!(
            r.write_bytes(10, &[9; 4]),
            Err(RegionError::Read(_))
        ));
        // A full-block overwrite is allowed (it replaces everything).
        assert!(r.write_bytes(0, &[9; 64]).is_ok());
        let mut buf = [0u8; 64];
        r.read_bytes(0, &mut buf).unwrap();
        assert_eq!(buf, [9; 64]);
    }

    #[test]
    fn empty_operations_are_noops() {
        let mut r = region();
        r.write_bytes(100, &[]).unwrap();
        let mut empty: [u8; 0] = [];
        r.read_bytes(100, &mut empty).unwrap();
    }
}
