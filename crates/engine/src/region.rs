//! Byte-granular access on top of the block engine.
//!
//! The engine's native unit is the 64-byte block (one cache line / one
//! MAC / one counter). Real software reads and writes arbitrary byte
//! ranges, which means sub-block writes are **read-modify-write**
//! operations: the enclosing block must be fetched and verified before
//! the modified block is re-encrypted under a fresh counter — a partial
//! write can never bypass verification, or an attacker could use it to
//! launder a tampered block back to validity.
//!
//! [`SecureRegion`] provides that layer, plus the bounds discipline of a
//! fixed-size protected region.

use crate::{MemoryEncryptionEngine, ReadError, ReadRun, SealedBlockState, BLOCK_BYTES};
use ame_persist::{invalid_data, put_u64, read_section, write_section, ByteReader};
use std::io;

/// Errors from byte-granular region access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegionError {
    /// The range `[addr, addr + len)` does not fit the region.
    OutOfBounds {
        /// Requested start offset.
        addr: u64,
        /// Requested length.
        len: usize,
    },
    /// A block on the path failed verification.
    Read(ReadError),
}

impl std::fmt::Display for RegionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegionError::OutOfBounds { addr, len } => {
                write!(f, "range [{addr:#x}, +{len}) outside the protected region")
            }
            RegionError::Read(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RegionError {}

impl From<ReadError> for RegionError {
    fn from(e: ReadError) -> Self {
        RegionError::Read(e)
    }
}

/// A fixed-size protected region with byte-granular reads and writes.
///
/// # Example
///
/// ```
/// use ame_engine::region::SecureRegion;
/// use ame_engine::EngineConfig;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut region = SecureRegion::new(EngineConfig::default(), 1 << 20);
/// region.write_bytes(100, b"hello across a block boundary?")?;
/// let mut buf = [0u8; 5];
/// region.read_bytes(100, &mut buf)?;
/// assert_eq!(&buf, b"hello");
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SecureRegion {
    engine: MemoryEncryptionEngine,
    size: u64,
}

impl SecureRegion {
    /// Creates a zeroed protected region of `size` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero or not a multiple of the 64-byte block.
    #[must_use]
    pub fn new(config: crate::EngineConfig, size: u64) -> Self {
        assert!(
            size > 0 && size.is_multiple_of(BLOCK_BYTES as u64),
            "size must be whole blocks"
        );
        Self {
            engine: MemoryEncryptionEngine::new(config),
            size,
        }
    }

    /// Region capacity in bytes.
    #[must_use]
    pub fn size(&self) -> u64 {
        self.size
    }

    /// The engine underneath (statistics, tamper surface for tests).
    pub fn engine_mut(&mut self) -> &mut MemoryEncryptionEngine {
        &mut self.engine
    }

    /// Read-only view of the engine underneath (telemetry collection).
    #[must_use]
    pub fn engine(&self) -> &MemoryEncryptionEngine {
        &self.engine
    }

    fn check(&self, addr: u64, len: usize) -> Result<(), RegionError> {
        if addr
            .checked_add(len as u64)
            .is_none_or(|end| end > self.size)
        {
            return Err(RegionError::OutOfBounds { addr, len });
        }
        Ok(())
    }

    /// Reads `buf.len()` bytes starting at byte offset `addr`. Every
    /// touched block is verified.
    ///
    /// # Errors
    ///
    /// [`RegionError::OutOfBounds`] for a bad range;
    /// [`RegionError::Read`] if any block fails verification.
    pub fn read_bytes(&mut self, addr: u64, buf: &mut [u8]) -> Result<(), RegionError> {
        self.check(addr, buf.len())?;
        let mut filled = 0usize;
        while filled < buf.len() {
            let pos = addr + filled as u64;
            let block_base = pos & !(BLOCK_BYTES as u64 - 1);
            let offset = (pos - block_base) as usize;
            let take = (BLOCK_BYTES - offset).min(buf.len() - filled);
            let block = self.engine.read_block(block_base)?;
            buf[filled..filled + take].copy_from_slice(&block[offset..offset + take]);
            filled += take;
        }
        Ok(())
    }

    /// Writes a batch of block-aligned full-block stores through the
    /// engine's batched seal path (one pipelined keystream batch per
    /// overflow-free run). Equivalent to writing each block in order;
    /// the whole batch is bounds-checked before anything is written.
    ///
    /// # Errors
    ///
    /// [`RegionError::OutOfBounds`] if any address is unaligned or out
    /// of range — in that case no block of the batch is written.
    pub fn write_blocks(&mut self, items: &[(u64, [u8; BLOCK_BYTES])]) -> Result<(), RegionError> {
        for &(addr, _) in items {
            self.check(addr, BLOCK_BYTES)?;
            if !addr.is_multiple_of(BLOCK_BYTES as u64) {
                return Err(RegionError::OutOfBounds {
                    addr,
                    len: BLOCK_BYTES,
                });
            }
        }
        self.engine.write_blocks(items);
        Ok(())
    }

    /// Reads and verifies a run of block-aligned full-block loads through
    /// the engine's batched read path (one verified counter fetch per
    /// distinct metadata block, one pipelined keystream batch), with
    /// per-block sequential fallback on any anomaly. The whole run is
    /// bounds-checked before anything is read.
    ///
    /// # Errors
    ///
    /// [`RegionError::OutOfBounds`] if any address is unaligned or out of
    /// range — in that case no block of the run is read. Verification
    /// failures are reported *inside* the returned [`ReadRun`] so callers
    /// keep the successfully released prefix.
    pub fn read_blocks(&mut self, addrs: &[u64]) -> Result<ReadRun, RegionError> {
        for &addr in addrs {
            self.check(addr, BLOCK_BYTES)?;
            if !addr.is_multiple_of(BLOCK_BYTES as u64) {
                return Err(RegionError::OutOfBounds {
                    addr,
                    len: BLOCK_BYTES,
                });
            }
        }
        Ok(self.engine.read_blocks(addrs))
    }

    /// Atomically reads, verifies, transforms, and re-seals one aligned
    /// block, returning the pre-image. The seal reuses the verified
    /// read's counter fetch, so the whole operation costs one metadata
    /// lookup.
    ///
    /// # Errors
    ///
    /// [`RegionError::OutOfBounds`] for a bad or unaligned address;
    /// [`RegionError::Read`] if the verified read fails (nothing is
    /// written in that case).
    pub fn rmw_block(
        &mut self,
        addr: u64,
        f: impl FnOnce(&mut [u8; BLOCK_BYTES]),
    ) -> Result<[u8; BLOCK_BYTES], RegionError> {
        self.check(addr, BLOCK_BYTES)?;
        if !addr.is_multiple_of(BLOCK_BYTES as u64) {
            return Err(RegionError::OutOfBounds {
                addr,
                len: BLOCK_BYTES,
            });
        }
        Ok(self.engine.read_modify_write_block(addr, f)?)
    }

    /// Writes `data` starting at byte offset `addr`. Partially covered
    /// blocks are read-modify-written: the old contents are verified
    /// before the merged block is sealed under a fresh counter.
    ///
    /// # Errors
    ///
    /// [`RegionError::OutOfBounds`] for a bad range;
    /// [`RegionError::Read`] if a partially covered block fails
    /// verification (nothing is written in that case for that block
    /// onward).
    pub fn write_bytes(&mut self, addr: u64, data: &[u8]) -> Result<(), RegionError> {
        self.check(addr, data.len())?;
        let mut written = 0usize;
        while written < data.len() {
            let pos = addr + written as u64;
            let block_base = pos & !(BLOCK_BYTES as u64 - 1);
            let offset = (pos - block_base) as usize;
            let take = (BLOCK_BYTES - offset).min(data.len() - written);
            let mut block = if take == BLOCK_BYTES {
                // Full-block store: no RMW needed.
                [0u8; BLOCK_BYTES]
            } else {
                self.engine.read_block(block_base)?
            };
            block[offset..offset + take].copy_from_slice(&data[written..written + take]);
            self.engine.write_block(block_base, &block);
            written += take;
        }
        Ok(())
    }

    // ---- durable storage plane ----

    /// Section magic of a frozen region image.
    const MAGIC: &'static [u8; 8] = b"AMEREGN\0";
    /// Section version of a frozen region image.
    const VERSION: u32 = 1;

    /// Captures a consistent snapshot of the whole region — size plus the
    /// engine's complete sealed image (ciphertext, counters, tree, MACs;
    /// never plaintext) — as one checksummed byte vector.
    ///
    /// The image embeds the key-derivation seed and is therefore **not
    /// confidential** against a reader of the image itself; see
    /// [`MemoryEncryptionEngine::freeze_into`] for the threat-model
    /// caveat.
    #[must_use]
    pub fn freeze(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        put_u64(&mut payload, self.size);
        self.engine.freeze_into(&mut payload);
        let mut out = Vec::with_capacity(payload.len() + 32);
        write_section(&mut out, Self::MAGIC, Self::VERSION, &payload);
        out
    }

    /// Rebuilds a region from an image produced by [`Self::freeze`]. Keys
    /// are re-derived from the stored seed; callers run
    /// [`Self::verify_all`] before trusting the result.
    ///
    /// # Errors
    ///
    /// `InvalidData` on any framing/checksum failure in the image.
    pub fn thaw(image: &[u8]) -> io::Result<Self> {
        let mut r = ByteReader::new(image);
        let (version, mut payload) = read_section(&mut r, Self::MAGIC)?;
        if version != Self::VERSION {
            return Err(invalid_data(format!(
                "unsupported region image version {version}"
            )));
        }
        let size = payload.u64()?;
        if size == 0 || !size.is_multiple_of(BLOCK_BYTES as u64) {
            return Err(invalid_data("region size must be whole blocks"));
        }
        let engine = MemoryEncryptionEngine::thaw_from(&mut payload)?;
        Ok(Self { engine, size })
    }

    /// Exports one block's sealed state (write-intent logging).
    ///
    /// # Errors
    ///
    /// [`RegionError::OutOfBounds`] for a bad or unaligned address.
    pub fn export_sealed(&mut self, addr: u64) -> Result<SealedBlockState, RegionError> {
        self.check(addr, BLOCK_BYTES)?;
        if !addr.is_multiple_of(BLOCK_BYTES as u64) {
            return Err(RegionError::OutOfBounds {
                addr,
                len: BLOCK_BYTES,
            });
        }
        Ok(self.engine.export_sealed(addr))
    }

    /// Re-installs a sealed block state (write-intent log replay).
    ///
    /// # Errors
    ///
    /// `InvalidData` if the address is out of bounds/unaligned or the
    /// counter value cannot be represented — either way the log is
    /// corrupt and the shard quarantines.
    pub fn apply_sealed(&mut self, addr: u64, state: &SealedBlockState) -> io::Result<()> {
        if self.check(addr, BLOCK_BYTES).is_err() || !addr.is_multiple_of(BLOCK_BYTES as u64) {
            return Err(invalid_data("replayed address outside the region"));
        }
        self.engine.apply_sealed(addr, state)
    }

    /// Re-installs a run of sealed block states in one batched pass —
    /// same per-block effects as [`Self::apply_sealed`] per entry, with
    /// the integrity-tree re-sync deduplicated per metadata block. Every
    /// address is bounds-checked before any entry is applied, so a bad
    /// log cannot partially replay through this path.
    ///
    /// # Errors
    ///
    /// `InvalidData` if any address is out of bounds/unaligned or a
    /// counter value cannot be represented — either way the log is
    /// corrupt and the shard quarantines.
    pub fn apply_sealed_run(&mut self, entries: &[(u64, SealedBlockState)]) -> io::Result<()> {
        for &(addr, _) in entries {
            if self.check(addr, BLOCK_BYTES).is_err() || !addr.is_multiple_of(BLOCK_BYTES as u64) {
                return Err(invalid_data("replayed address outside the region"));
            }
        }
        self.engine.apply_sealed_run(entries)
    }

    /// Verifies every resident block (tree + MAC), returning the count.
    ///
    /// # Errors
    ///
    /// The first [`ReadError`] encountered — the region must then be
    /// quarantined, not served.
    pub fn verify_all(&mut self) -> Result<u64, ReadError> {
        self.engine.verify_all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EngineConfig;

    fn region() -> SecureRegion {
        SecureRegion::new(EngineConfig::default(), 4096)
    }

    #[test]
    fn unaligned_roundtrip_across_blocks() {
        let mut r = region();
        let msg = b"the quick brown fox jumps over sixty-four byte boundaries easily";
        r.write_bytes(40, msg).unwrap(); // spans blocks 0 and 1
        let mut buf = vec![0u8; msg.len()];
        r.read_bytes(40, &mut buf).unwrap();
        assert_eq!(&buf, msg);
        // Untouched bytes around the write are still zero.
        let mut pre = [0u8; 40];
        r.read_bytes(0, &mut pre).unwrap();
        assert_eq!(pre, [0u8; 40]);
    }

    #[test]
    fn partial_write_preserves_neighbours() {
        let mut r = region();
        r.write_bytes(0, &[0xAA; 128]).unwrap();
        r.write_bytes(60, &[0xBB; 8]).unwrap(); // straddles the block edge
        let mut buf = [0u8; 128];
        r.read_bytes(0, &mut buf).unwrap();
        assert_eq!(&buf[..60], &[0xAA; 60][..]);
        assert_eq!(&buf[60..68], &[0xBB; 8][..]);
        assert_eq!(&buf[68..], &[0xAA; 60][..]);
    }

    #[test]
    fn full_block_write_skips_rmw_read() {
        let mut r = region();
        let reads_before = r.engine_mut().stats().reads;
        r.write_bytes(64, &[1; 64]).unwrap();
        assert_eq!(
            r.engine_mut().stats().reads,
            reads_before,
            "aligned store needs no read"
        );
        let reads_before = r.engine_mut().stats().reads;
        r.write_bytes(64, &[2; 32]).unwrap();
        assert!(
            r.engine_mut().stats().reads > reads_before,
            "partial store is RMW"
        );
    }

    #[test]
    fn bounds_are_enforced() {
        let mut r = region();
        assert!(matches!(
            r.write_bytes(4090, &[0; 10]),
            Err(RegionError::OutOfBounds { .. })
        ));
        let mut buf = [0u8; 8];
        assert!(matches!(
            r.read_bytes(u64::MAX - 3, &mut buf),
            Err(RegionError::OutOfBounds { .. })
        ));
        // Exactly-at-the-end is fine.
        assert!(r.write_bytes(4088, &[1; 8]).is_ok());
    }

    #[test]
    fn partial_write_cannot_launder_tampered_block() {
        // An attacker corrupts a block beyond repair; a later sub-block
        // write to it must fail instead of re-sealing attacker bits.
        let mut r = SecureRegion::new(
            EngineConfig {
                max_correctable_flips: 0,
                ..EngineConfig::default()
            },
            4096,
        );
        r.write_bytes(0, &[7; 64]).unwrap();
        r.engine_mut().tamper_data_bit(0, 13);
        assert!(matches!(
            r.write_bytes(10, &[9; 4]),
            Err(RegionError::Read(_))
        ));
        // A full-block overwrite is allowed (it replaces everything).
        assert!(r.write_bytes(0, &[9; 64]).is_ok());
        let mut buf = [0u8; 64];
        r.read_bytes(0, &mut buf).unwrap();
        assert_eq!(buf, [9; 64]);
    }

    #[test]
    fn empty_operations_are_noops() {
        let mut r = region();
        r.write_bytes(100, &[]).unwrap();
        let mut empty: [u8; 0] = [];
        r.read_bytes(100, &mut empty).unwrap();
    }

    #[test]
    fn freeze_thaw_roundtrip() {
        let mut r = region();
        r.write_bytes(40, b"durable across the freeze boundary")
            .unwrap();
        let image = r.freeze();
        let mut back = SecureRegion::thaw(&image).unwrap();
        assert_eq!(back.size(), r.size());
        assert!(back.verify_all().is_ok());
        let mut buf = [0u8; 34];
        back.read_bytes(40, &mut buf).unwrap();
        assert_eq!(&buf[..], b"durable across the freeze boundary");
    }

    #[test]
    fn thaw_rejects_corrupt_image() {
        let mut r = region();
        r.write_bytes(0, &[7; 64]).unwrap();
        let mut image = r.freeze();
        let mid = image.len() / 2;
        image[mid] ^= 0x02;
        assert!(SecureRegion::thaw(&image).is_err());
    }

    #[test]
    fn sealed_export_bounds_checked() {
        let mut r = region();
        assert!(r.export_sealed(4096).is_err(), "past the end");
        assert!(r.export_sealed(33).is_err(), "unaligned");
        let sealed = r.export_sealed(64).unwrap();
        assert!(
            r.apply_sealed(8192, &sealed).is_err(),
            "replay out of range"
        );
        assert!(r.apply_sealed(64, &sealed).is_ok());
    }
}
