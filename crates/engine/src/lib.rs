//! The authenticated memory encryption engine — the component the paper
//! adds between the last-level cache and DRAM.
//!
//! Two complementary models live here:
//!
//! * [`MemoryEncryptionEngine`] (this module) — the *functional* engine:
//!   real AES-CTR encryption, real 56-bit Carter-Wegman MACs, a real
//!   Bonsai Merkle tree over real packed counter blocks, and the
//!   MAC-in-ECC side-band layout of Figure 2. It detects tampering and
//!   replay, and corrects DRAM faults with the brute-force
//!   *flip-and-check* procedure of Section 3.4 ([`correction`]).
//! * [`timing::TimingEngine`] — the *performance* model: counts and times
//!   the DRAM transactions each protected access generates (counter-tree
//!   walks through the metadata cache, separate MAC fetches vs the free
//!   ECC side-band, re-encryption sweeps) for the Figure 8 experiments.
//!
//! # Example
//!
//! ```
//! use ame_engine::{EngineConfig, MemoryEncryptionEngine};
//!
//! let mut engine = MemoryEncryptionEngine::new(EngineConfig::default());
//! engine.write_block(0x4000, &[7u8; 64]);
//! assert_eq!(engine.read_block(0x4000).unwrap(), [7u8; 64]);
//!
//! // A cold-boot attacker flips ciphertext bits: a single flip is both
//! // detected and corrected...
//! engine.tamper_data_bit(0x4000, 100);
//! assert_eq!(engine.read_block(0x4000).unwrap(), [7u8; 64]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod correction;
pub mod paging;
pub mod region;
pub mod scrub;
pub mod timing;

use ame_counters::delta::{DeltaConfig, DeltaCounters};
use ame_counters::dual::{DualLengthConfig, DualLengthDeltaCounters};
use ame_counters::monolithic::MonolithicCounters;
use ame_counters::split::SplitCounters;
use ame_counters::{CounterScheme, CounterStats, WriteOutcome};
use ame_crypto::MemoryCipher;
use ame_dram::storage::{DramStorage, StoredBlock};
use ame_ecc::layout::{MacSideband, StandardSideband};
use ame_ecc::secded::DecodeOutcome;
use ame_persist::{invalid_data, put_u32, put_u64, read_section, write_section, ByteReader};
use ame_tree::cache::CachedTree;
use ame_tree::merkle::{BonsaiTree, VerifyError};
use std::collections::HashMap;
use std::io;

/// Size of a protected memory block in bytes.
pub const BLOCK_BYTES: usize = 64;

/// Where MAC tags are stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MacPlacement {
    /// Baseline: MACs in a dedicated DRAM region (extra transaction per
    /// verified read); the ECC side-band holds standard SEC-DED codes.
    SeparateMac,
    /// The paper's scheme (Figure 2): the 56-bit MAC + 7-bit MAC parity +
    /// 1 ciphertext-parity bit ride in the ECC side-band.
    #[default]
    MacInEcc,
}

/// Which counter representation the engine uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CounterSchemeKind {
    /// Full 56-bit counter per block (SGX baseline).
    Monolithic,
    /// Split counters (7-bit minors, 64-block groups).
    Split,
    /// Flat 7-bit frame-of-reference deltas (the paper's scheme).
    #[default]
    Delta,
    /// Dual-length 6+4-bit deltas (Figure 6).
    DualLength,
}

impl CounterSchemeKind {
    /// Instantiates the corresponding scheme with the paper's parameters.
    #[must_use]
    pub fn build(self) -> Box<dyn CounterScheme> {
        match self {
            CounterSchemeKind::Monolithic => Box::new(MonolithicCounters::default()),
            CounterSchemeKind::Split => Box::new(SplitCounters::default()),
            CounterSchemeKind::Delta => Box::new(DeltaCounters::new(DeltaConfig::default())),
            CounterSchemeKind::DualLength => {
                Box::new(DualLengthDeltaCounters::new(DualLengthConfig::default()))
            }
        }
    }
}

/// Configuration of the functional engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Key-derivation seed (per-boot key material).
    pub seed: u64,
    /// MAC storage placement.
    pub mac_placement: MacPlacement,
    /// Counter representation.
    pub counter_scheme: CounterSchemeKind,
    /// Maximum bit flips the flip-and-check corrector attempts (0 disables
    /// correction, 1 = single-bit, 2 = double-bit as in Section 3.4).
    pub max_correctable_flips: u32,
    /// Off-chip MAC levels of the Bonsai Merkle tree.
    pub tree_levels: usize,
    /// On-chip counter-cache capacity in 64-byte metadata blocks
    /// (Section 2.2's Gassend/SGX counter cache). 0 disables the cache:
    /// every counter fetch walks the tree. With a cache, reads served
    /// from the verified on-chip copy skip the walk — and off-chip
    /// tampering of a cached block is only caught once the copy is
    /// evicted, exactly like real hardware.
    pub counter_cache_blocks: usize,
    /// Prefetch counter blocks at 4 KB group boundaries on fused read
    /// runs: the batched read path collects the *distinct* metadata
    /// blocks a run touches and issues all verified fetches up-front,
    /// before the first data block is checked — overlapping the tree
    /// walks instead of discovering each boundary mid-run. Functionally
    /// identical either way; this only changes fetch scheduling.
    pub prefetch_counters: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            seed: 0x5eed,
            mac_placement: MacPlacement::MacInEcc,
            counter_scheme: CounterSchemeKind::Delta,
            max_correctable_flips: 2,
            tree_levels: 2,
            counter_cache_blocks: 0,
            prefetch_counters: true,
        }
    }
}

impl EngineConfig {
    /// Derives the configuration for one shard of a sharded deployment:
    /// identical parameters, but an independent per-shard key seed, so no
    /// two shards share key material and a compromise of one shard's
    /// counters/MACs says nothing about its siblings.
    ///
    /// Equivalent to [`EngineConfig::for_tenant`] with tenant 0 — the
    /// single-tenant derivation every pre-tenant deployment used, so
    /// stores persisted before tenancy existed re-derive their keys
    /// unchanged.
    #[must_use]
    pub fn for_shard(self, shard: usize) -> Self {
        self.for_tenant(0, shard)
    }

    /// Derives the configuration for one `(tenant, shard)` cell of a
    /// multi-tenant sharded deployment: identical parameters, but a key
    /// seed independent across *both* axes, so every tenant's address
    /// space is sealed under its own per-shard key material — one
    /// tenant's compromised counters/MACs say nothing about any shard
    /// of any other tenant.
    ///
    /// The derivation is deterministic (SplitMix64-style mix of the
    /// base seed, the tenant index, and the shard index), so a store
    /// rebuilt with the same base seed re-derives the same keys.
    /// Tenant 0 reduces to the historical [`EngineConfig::for_shard`]
    /// derivation exactly.
    #[must_use]
    pub fn for_tenant(mut self, tenant: usize, shard: usize) -> Self {
        let mut z = self
            .seed
            .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(shard as u64 + 1))
            .wrapping_add(0xd1b5_4a32_d192_ed03u64.wrapping_mul(tenant as u64));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        self.seed = z ^ (z >> 31);
        self
    }
}

/// Why a protected read failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadError {
    /// The counter integrity tree detected tampering or replay.
    Tree(VerifyError),
    /// The MAC tag stored in the ECC side-band had an uncorrectable
    /// (double-bit) error.
    MacUncorrectable,
    /// Standard SEC-DED reported an uncorrectable data error
    /// (separate-MAC mode only).
    EccUncorrectable,
    /// The MAC check failed and flip-and-check could not repair the block:
    /// either an attack or a fault beyond the correction budget.
    IntegrityViolation,
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Tree(e) => write!(f, "counter tree: {e}"),
            ReadError::MacUncorrectable => write!(f, "uncorrectable error in stored MAC"),
            ReadError::EccUncorrectable => write!(f, "uncorrectable SEC-DED data error"),
            ReadError::IntegrityViolation => write!(f, "MAC verification failed"),
        }
    }
}

impl std::error::Error for ReadError {}

impl From<VerifyError> for ReadError {
    fn from(e: VerifyError) -> Self {
        ReadError::Tree(e)
    }
}

/// Outcome of a batched verified read ([`MemoryEncryptionEngine::read_blocks`]).
///
/// The run's plaintext is released as a prefix: all blocks on success,
/// exactly the blocks preceding the first failure otherwise — the same
/// prefix a loop of sequential [`read_block`](MemoryEncryptionEngine::read_block)
/// calls stopping at the first error would have produced.
#[derive(Debug)]
pub struct ReadRun {
    /// Verified plaintext of the released prefix (every block when
    /// `failed` is `None`, the first `failed.0` blocks otherwise).
    pub blocks: Vec<[u8; BLOCK_BYTES]>,
    /// The first failure, as `(index into the run, cause)`. The index
    /// always equals `blocks.len()`.
    pub failed: Option<(usize, ReadError)>,
    /// Verified counter-block fetches the run cost. On the batched fast
    /// path this is the number of *distinct* metadata blocks the run
    /// touched (the amortization the batch bought); on the per-block
    /// fallback it is one fetch per attempted block.
    pub counter_fetches: u64,
}

/// Functional-engine statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Verified block reads.
    pub reads: u64,
    /// Block writes.
    pub writes: u64,
    /// Blocks re-encrypted due to counter-group overflow.
    pub reencrypted_blocks: u64,
    /// Single-bit MAC corruptions repaired by the 7-bit MAC parity.
    pub mac_corrections: u64,
    /// Data blocks repaired by flip-and-check.
    pub data_corrections: u64,
    /// Total MAC-check hypotheses evaluated by flip-and-check.
    pub flip_checks: u64,
    /// Reads that failed verification.
    pub failed_reads: u64,
}

impl std::fmt::Display for EngineStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "reads={} writes={} corrected[data={} mac={}] reencrypted={} failed={}",
            self.reads,
            self.writes,
            self.data_corrections,
            self.mac_corrections,
            self.reencrypted_blocks,
            self.failed_reads
        )
    }
}

impl ame_telemetry::Metrics for EngineStats {
    fn record(&self, sink: &mut dyn ame_telemetry::MetricSink) {
        sink.counter("reads", self.reads);
        sink.counter("writes", self.writes);
        sink.counter("reencrypted_blocks", self.reencrypted_blocks);
        sink.counter("mac_corrections", self.mac_corrections);
        sink.counter("data_corrections", self.data_corrections);
        sink.counter("flip_checks", self.flip_checks);
        sink.counter("failed_reads", self.failed_reads);
    }
}

/// Snapshot of all off-chip state for one block, as a replay attacker
/// would capture it: stored data + side-band, plus the counter metadata
/// block and its stored leaf MAC.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockSnapshot {
    addr: u64,
    stored: StoredBlock,
    /// Counter metadata leaf (image + stored MAC); `None` for relocated
    /// snapshots, which splice only the data block.
    meta_leaf: Option<([u8; 64], u64)>,
    mac_entry: Option<u64>,
}

impl BlockSnapshot {
    /// The block-aligned address this snapshot was captured at.
    #[must_use]
    pub fn addr(&self) -> u64 {
        self.addr
    }

    /// The raw stored data bytes (ciphertext) — what a cold-boot attacker
    /// reads out of the DRAM chips.
    #[must_use]
    pub fn stored_data(&self) -> [u8; 64] {
        self.stored.data
    }

    /// The raw stored side-band bytes (MAC + parity, or ECC check bytes).
    #[must_use]
    pub fn stored_sideband(&self) -> [u8; 8] {
        self.stored.sideband
    }

    /// A *splicing* variant: the same stored bits retargeted at a
    /// different address. Counter metadata is not carried along (the
    /// attacker leaves the target's counters untouched), so replaying it
    /// tests the MAC's address binding.
    #[must_use]
    pub fn relocated(&self, addr: u64) -> BlockSnapshot {
        BlockSnapshot {
            addr,
            stored: self.stored,
            meta_leaf: None,
            mac_entry: self.mac_entry,
        }
    }
}

/// The integrity-tree frontend: direct walks, or fronted by the on-chip
/// counter cache.
#[derive(Debug)]
enum TreeFrontend {
    Plain(BonsaiTree),
    Cached(CachedTree),
}

impl TreeFrontend {
    fn read_counter_block(&mut self, idx: u64) -> Result<[u8; 64], VerifyError> {
        match self {
            TreeFrontend::Plain(t) => t.read_counter_block(idx),
            TreeFrontend::Cached(t) => t.read_counter_block(idx),
        }
    }

    fn write_counter_block(&mut self, idx: u64, content: [u8; 64]) {
        match self {
            TreeFrontend::Plain(t) => t.write_counter_block(idx, content),
            TreeFrontend::Cached(t) => t.write_counter_block(idx, content),
        }
    }

    fn inner_mut(&mut self) -> &mut BonsaiTree {
        match self {
            TreeFrontend::Plain(t) => t,
            TreeFrontend::Cached(t) => t.tree_mut(),
        }
    }

    fn inner(&self) -> &BonsaiTree {
        match self {
            TreeFrontend::Plain(t) => t,
            TreeFrontend::Cached(t) => t.tree(),
        }
    }
}

/// The whole functional engine reports as one scope: its own event
/// counters at the root, the counter scheme under `counters/`, the
/// metadata cache (when configured) under `metadata_cache/`, and the
/// flip-and-check cost distribution as `flip_check_distribution`.
impl ame_telemetry::Metrics for MemoryEncryptionEngine {
    fn record(&self, sink: &mut dyn ame_telemetry::MetricSink) {
        ame_telemetry::Metrics::record(&self.stats, sink);
        let counters = self.counter_stats();
        sink.counter("counters/writes", counters.writes);
        sink.counter("counters/resets", counters.resets);
        sink.counter("counters/reencodes", counters.reencodes);
        sink.counter("counters/expansions", counters.expansions);
        sink.counter("counters/reencryptions", counters.reencryptions);
        if let Some(cache) = self.counter_cache_stats() {
            sink.counter("metadata_cache/hits", cache.hits);
            sink.counter("metadata_cache/misses", cache.misses);
            sink.counter("metadata_cache/evictions", cache.evictions);
            sink.gauge("metadata_cache/hit_rate", cache.hit_rate());
        }
        sink.histogram("flip_check_distribution", &self.flip_check_dist);
        sink.histogram("mac_batch_size", &self.mac_batch_dist);
    }
}

/// The functional authenticated memory encryption engine.
pub struct MemoryEncryptionEngine {
    config: EngineConfig,
    cipher: MemoryCipher,
    counters: Box<dyn CounterScheme>,
    tree: TreeFrontend,
    storage: DramStorage,
    /// Separate-MAC mode: per-block 56-bit tags in a dedicated region.
    mac_region: HashMap<u64, u64>,
    stats: EngineStats,
    /// Distribution of MAC hypotheses evaluated per flip-and-check
    /// correction attempt (Section 3.4's cost argument).
    flip_check_dist: ame_telemetry::Histogram,
    /// Distribution of multi-message MAC batch sizes issued by the
    /// fused read-verify and write-seal paths.
    mac_batch_dist: ame_telemetry::Histogram,
}

impl std::fmt::Debug for MemoryEncryptionEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoryEncryptionEngine")
            .field("config", &self.config)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl MemoryEncryptionEngine {
    /// Creates an engine over an all-zero memory.
    #[must_use]
    pub fn new(config: EngineConfig) -> Self {
        let cipher = MemoryCipher::from_seed(config.seed);
        let bonsai = BonsaiTree::new(
            MemoryCipher::from_seed(config.seed ^ 0x7ee),
            config.tree_levels,
            8,
        );
        let tree = if config.counter_cache_blocks > 0 {
            TreeFrontend::Cached(CachedTree::new(bonsai, config.counter_cache_blocks))
        } else {
            TreeFrontend::Plain(bonsai)
        };
        Self {
            config,
            cipher,
            counters: config.counter_scheme.build(),
            tree,
            storage: DramStorage::new(),
            mac_region: HashMap::new(),
            stats: EngineStats::default(),
            flip_check_dist: ame_telemetry::Histogram::new(),
            mac_batch_dist: ame_telemetry::Histogram::new(),
        }
    }

    /// The engine configuration.
    #[must_use]
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Functional statistics so far.
    #[must_use]
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Counter-scheme statistics (resets, re-encodes, re-encryptions).
    #[must_use]
    pub fn counter_stats(&self) -> CounterStats {
        self.counters.stats()
    }

    /// Distribution of MAC hypotheses per flip-and-check attempt.
    #[must_use]
    pub fn flip_check_distribution(&self) -> &ame_telemetry::Histogram {
        &self.flip_check_dist
    }

    /// Distribution of multi-message MAC batch sizes issued by the
    /// fused read-verify and write-seal paths.
    #[must_use]
    pub fn mac_batch_distribution(&self) -> &ame_telemetry::Histogram {
        &self.mac_batch_dist
    }

    fn block_index(addr: u64) -> u64 {
        addr / BLOCK_BYTES as u64
    }

    fn block_addr(block: u64) -> u64 {
        block * BLOCK_BYTES as u64
    }

    /// Encrypt + MAC + store one plaintext block under `counter`.
    fn seal(&mut self, addr: u64, counter: u64, plain: &[u8; BLOCK_BYTES]) {
        let ct = self.cipher.encrypt_block(addr, counter, plain);
        self.seal_ciphertext(addr, counter, ct);
    }

    /// MAC + store an already-encrypted block under `counter` — the tail
    /// of [`Self::seal`], split out so bulk paths that produce ciphertext
    /// from batched keystreams can skip the per-block encrypt call.
    fn seal_ciphertext(&mut self, addr: u64, counter: u64, ct: [u8; BLOCK_BYTES]) {
        let tag = self.cipher.mac_block(addr, counter, &ct);
        self.seal_ciphertext_with_tag(addr, ct, tag);
    }

    /// Stores an already-encrypted block whose tag was precomputed — the
    /// tail of [`Self::seal_ciphertext`], split out so bulk paths can
    /// produce a whole run's tags with one [`MemoryCipher::mac_batch`]
    /// call instead of a per-block MAC.
    fn seal_ciphertext_with_tag(&mut self, addr: u64, ct: [u8; BLOCK_BYTES], tag: u64) {
        let sideband = match self.config.mac_placement {
            MacPlacement::MacInEcc => MacSideband::new(tag, &ct).to_bytes(),
            MacPlacement::SeparateMac => {
                self.mac_region.insert(Self::block_index(addr), tag);
                StandardSideband::encode(&ct).to_bytes()
            }
        };
        self.storage.write(addr, StoredBlock { data: ct, sideband });
    }

    /// Ensures a block has valid ciphertext/MAC state (memory is zero at
    /// boot; the first touch seals zeros under the current counter).
    fn ensure_initialized(&mut self, addr: u64) {
        if !self.storage.contains(addr) {
            let counter = self.counters.counter(Self::block_index(addr));
            self.seal(addr, counter, &[0u8; BLOCK_BYTES]);
            self.sync_tree(Self::block_index(addr));
        }
    }

    /// Mirrors the (updated) packed counter block into the integrity tree.
    fn sync_tree(&mut self, block: u64) {
        let meta = self.counters.metadata_block_of(block);
        let image = self.counters.metadata_block_image(meta);
        self.tree.write_counter_block(meta, image);
    }

    /// Re-encrypts every *resident* block of an overflowed group under the
    /// fresh counter (Section 4.2: sequential read-decrypt-encrypt-write).
    ///
    /// Counter mode lets the decrypt and re-encrypt collapse into one XOR
    /// with the combined old⊕new keystream, and both keystream sets for
    /// the whole group are generated as pipelined batches rather than one
    /// AES call per block — re-encryption is the engine's worst-case
    /// latency event, so it gets the full batched path.
    fn reencrypt_group(&mut self, group: u64, old_counters: &[u64], new_counter: u64) {
        let bpg = self.counters.blocks_per_group() as u64;
        // Never-touched blocks stay zero; they will be sealed under the
        // new counter on first use.
        let resident: Vec<(u64, u64)> = old_counters
            .iter()
            .enumerate()
            .filter_map(|(i, &old_ctr)| {
                let addr = Self::block_addr(group * bpg + i as u64);
                self.storage.contains(addr).then_some((addr, old_ctr))
            })
            .collect();
        if resident.is_empty() {
            return;
        }
        let old_ks = self.cipher.keystream_batch(&resident);
        let new_nonces: Vec<(u64, u64)> = resident
            .iter()
            .map(|&(addr, _)| (addr, new_counter))
            .collect();
        let new_ks = self.cipher.keystream_batch(&new_nonces);
        let ciphertexts: Vec<[u8; BLOCK_BYTES]> = resident
            .iter()
            .zip(&old_ks)
            .zip(&new_ks)
            .map(|((&(addr, _), old), new)| {
                let mut ct = self.storage.read(addr).data;
                for ((c, o), n) in ct.iter_mut().zip(old.iter()).zip(new.iter()) {
                    *c ^= o ^ n;
                }
                ct
            })
            .collect();
        // One multi-message pass tags the whole re-encrypted group.
        let tags = self.cipher.mac_batch(&new_nonces, &ciphertexts);
        self.mac_batch_dist.record(ciphertexts.len() as u64);
        for ((&(addr, _), ct), tag) in resident.iter().zip(ciphertexts).zip(tags) {
            self.seal_ciphertext_with_tag(addr, ct, tag);
            self.stats.reencrypted_blocks += 1;
        }
    }

    /// Writes one 64-byte block at a block-aligned address.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 64-byte aligned.
    pub fn write_block(&mut self, addr: u64, plain: &[u8; BLOCK_BYTES]) {
        assert_eq!(
            addr % BLOCK_BYTES as u64,
            0,
            "address must be block-aligned"
        );
        let block = Self::block_index(addr);
        let outcome = self.counters.record_write(block);
        if let WriteOutcome::Reencrypted {
            group,
            old_counters,
            new_counter,
        } = &outcome
        {
            let (group, new_counter) = (*group, *new_counter);
            let old = old_counters.clone();
            self.reencrypt_group(group, &old, new_counter);
        }
        let counter = self.counters.counter(block);
        self.seal(addr, counter, plain);
        self.sync_tree(block);
        self.stats.writes += 1;
    }

    /// Writes a batch of block-aligned full-block stores, behaviourally
    /// identical to calling [`Self::write_block`] once per item in order
    /// (duplicate addresses included: each store bumps the counter, the
    /// last one survives), but generating the seal keystreams of every
    /// overflow-free run with one pipelined [`MemoryCipher::keystream_batch`]
    /// call instead of a per-block AES invocation.
    ///
    /// A group-counter overflow inside the batch forces the pending run
    /// to seal per-block first (its captured counters must hit storage
    /// before the group re-encryption rewrites those blocks), so the
    /// batched fast path covers exactly the overflow-free stretches —
    /// which is all of them outside the rare counter-wrap events.
    ///
    /// # Panics
    ///
    /// Panics if any address is not 64-byte aligned.
    pub fn write_blocks(&mut self, items: &[(u64, [u8; BLOCK_BYTES])]) {
        // Phase 1: bump counters in order, accumulating `(item, counter)`
        // runs that are safe to seal from one batched keystream.
        let mut run: Vec<(usize, u64)> = Vec::with_capacity(items.len());
        for (i, &(addr, _)) in items.iter().enumerate() {
            assert_eq!(
                addr % BLOCK_BYTES as u64,
                0,
                "address must be block-aligned"
            );
            let block = Self::block_index(addr);
            let outcome = self.counters.record_write(block);
            if let WriteOutcome::Reencrypted {
                group,
                old_counters,
                new_counter,
            } = outcome
            {
                // The overflow already reset the group's counters, and the
                // upcoming re-encryption reads storage assuming every
                // resident block is sealed under `old_counters`. Pending
                // items may be in that group, so commit them under their
                // captured counters *now* (those captured values are the
                // `old_counters` the re-encryption will use).
                self.flush_write_run(items, &run);
                run.clear();
                self.reencrypt_group(group, &old_counters, new_counter);
            }
            run.push((i, self.counters.counter(block)));
        }
        // Phase 2: one keystream batch encrypts the overflow-free tail
        // and one multi-message MAC batch seals it.
        if run.is_empty() {
            return;
        }
        let nonces: Vec<(u64, u64)> = run.iter().map(|&(i, ctr)| (items[i].0, ctr)).collect();
        let keystreams = self.cipher.keystream_batch(&nonces);
        let ciphertexts: Vec<[u8; BLOCK_BYTES]> = run
            .iter()
            .zip(&keystreams)
            .map(|(&(i, _), ks)| {
                let mut ct = items[i].1;
                for (c, k) in ct.iter_mut().zip(ks.iter()) {
                    *c ^= k;
                }
                ct
            })
            .collect();
        let tags = self.cipher.mac_batch(&nonces, &ciphertexts);
        self.mac_batch_dist.record(ciphertexts.len() as u64);
        for ((&(i, _), ct), tag) in run.iter().zip(ciphertexts).zip(tags) {
            let addr = items[i].0;
            self.seal_ciphertext_with_tag(addr, ct, tag);
            self.sync_tree(Self::block_index(addr));
            self.stats.writes += 1;
        }
    }

    /// Seals a pending `(item index, counter)` run per-block — the slow
    /// path [`Self::write_blocks`] takes when a counter overflow lands
    /// mid-batch.
    fn flush_write_run(&mut self, items: &[(u64, [u8; BLOCK_BYTES])], run: &[(usize, u64)]) {
        for &(i, counter) in run {
            let (addr, plain) = items[i];
            self.seal(addr, counter, &plain);
            self.sync_tree(Self::block_index(addr));
            self.stats.writes += 1;
        }
    }

    /// Reads and verifies one 64-byte block at a block-aligned address.
    ///
    /// # Errors
    ///
    /// Returns a [`ReadError`] if the counter tree, the MAC parity, the
    /// SEC-DED code, or the MAC check detect unrecoverable tampering or
    /// faults.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 64-byte aligned.
    pub fn read_block(&mut self, addr: u64) -> Result<[u8; BLOCK_BYTES], ReadError> {
        self.read_block_with_counter(addr).map(|(plain, _)| plain)
    }

    /// [`Self::read_block`], additionally returning the verified counter
    /// the block was sealed under so read-modify-write paths can reuse
    /// the metadata fetch for the seal.
    fn read_block_with_counter(
        &mut self,
        addr: u64,
    ) -> Result<([u8; BLOCK_BYTES], u64), ReadError> {
        assert_eq!(
            addr % BLOCK_BYTES as u64,
            0,
            "address must be block-aligned"
        );
        self.ensure_initialized(addr);
        let block = Self::block_index(addr);

        // 1. Fetch + verify the counter through the Bonsai Merkle tree.
        let meta = self.counters.metadata_block_of(block);
        let verified_image = match self.tree.read_counter_block(meta) {
            Ok(img) => img,
            Err(e) => {
                self.stats.failed_reads += 1;
                return Err(ReadError::Tree(e));
            }
        };
        // The engine's counter state must match the verified off-chip
        // image (it always does unless this code is buggy).
        debug_assert_eq!(verified_image, self.counters.metadata_block_image(meta));
        let counter = self.counters.counter(block);

        let stored = self.storage.read(addr);
        let plain = match self.config.mac_placement {
            MacPlacement::MacInEcc => self.read_mac_in_ecc(addr, counter, stored)?,
            MacPlacement::SeparateMac => self.read_separate_mac(addr, counter, stored)?,
        };
        Ok((plain, counter))
    }

    /// Reads and verifies a run of block-aligned addresses as one unit,
    /// behaviourally identical to calling [`Self::read_block`] once per
    /// address in order and stopping at the first error — but on the fast
    /// path the run costs one verified counter-block fetch per *distinct*
    /// metadata block it touches (instead of one per block) and one
    /// pipelined [`MemoryCipher::keystream_batch`] call for all decrypts.
    ///
    /// Verify-before-release: the fast path checks every block's MAC (and
    /// side-band parity/SEC-DED) before decrypting anything. Any anomaly —
    /// a tag mismatch, a correctable or uncorrectable side-band condition,
    /// an uninitialized block, a tree failure — abandons the batch without
    /// having mutated stats or storage and re-runs the whole run through
    /// sequential [`Self::read_block`] calls, so error attribution,
    /// flip-and-check correction, scrubbing, and failure statistics are
    /// bit-identical to the scalar path.
    ///
    /// # Panics
    ///
    /// Panics if any address is not 64-byte aligned.
    pub fn read_blocks(&mut self, addrs: &[u64]) -> ReadRun {
        for &addr in addrs {
            assert_eq!(
                addr % BLOCK_BYTES as u64,
                0,
                "address must be block-aligned"
            );
        }
        if addrs.len() > 1 {
            if let Some(run) = self.try_read_blocks_fast(addrs) {
                return run;
            }
        }
        self.read_blocks_sequential(addrs)
    }

    /// The batched fast path of [`Self::read_blocks`]. Returns `None` on
    /// any anomaly, *before* mutating stats or storage, so the sequential
    /// fallback replays the run from scratch.
    fn try_read_blocks_fast(&mut self, addrs: &[u64]) -> Option<ReadRun> {
        // Every block must already be sealed. Initializing a missing
        // block here would sync its (shared) counter leaf back to the
        // tree — and that must not happen before neighbouring blocks are
        // verified, or it could launder a tampered off-chip leaf that the
        // sequential path would have caught.
        if addrs.iter().any(|&a| !self.storage.contains(a)) {
            return None;
        }

        // One verified tree fetch per distinct metadata block in the run.
        let mut fetched: Vec<u64> = Vec::new();
        let mut counters: Vec<u64> = Vec::with_capacity(addrs.len());
        if self.config.prefetch_counters {
            // Prefetch: resolve the run's 4 KB group boundaries up-front
            // and issue every verified counter fetch before the first
            // data block is touched, instead of discovering each
            // boundary as the run walks into it.
            let mut metas: Vec<u64> = addrs
                .iter()
                .map(|&addr| self.counters.metadata_block_of(Self::block_index(addr)))
                .collect();
            metas.sort_unstable();
            metas.dedup();
            for &meta in &metas {
                let verified_image = self.tree.read_counter_block(meta).ok()?;
                debug_assert_eq!(verified_image, self.counters.metadata_block_image(meta));
            }
            fetched = metas;
            for &addr in addrs {
                counters.push(self.counters.counter(Self::block_index(addr)));
            }
        } else {
            for &addr in addrs {
                let block = Self::block_index(addr);
                let meta = self.counters.metadata_block_of(block);
                if !fetched.contains(&meta) {
                    let verified_image = self.tree.read_counter_block(meta).ok()?;
                    debug_assert_eq!(verified_image, self.counters.metadata_block_image(meta));
                    fetched.push(meta);
                }
                counters.push(self.counters.counter(block));
            }
        }

        // Gather every block's decoded ciphertext and stored tag. Any
        // side-band anomaly (a correctable or uncorrectable ECC
        // condition, a parity fault) drops to the sequential path before
        // any MAC work — that path owns correction, scrubbing, and
        // failure accounting.
        let mut ciphertexts: Vec<[u8; BLOCK_BYTES]> = Vec::with_capacity(addrs.len());
        let mut stored_tags: Vec<u64> = Vec::with_capacity(addrs.len());
        for &addr in addrs {
            let stored = self.storage.read(addr);
            let (ct, tag) = match self.config.mac_placement {
                MacPlacement::MacInEcc => {
                    let sideband = MacSideband::from_bytes(stored.sideband);
                    let DecodeOutcome::Clean { word: tag } = sideband.recover_tag() else {
                        return None;
                    };
                    (stored.data, tag)
                }
                MacPlacement::SeparateMac => {
                    let sideband = StandardSideband::from_bytes(stored.sideband);
                    let decoded = sideband.decode(&stored.data);
                    if decoded.any_error() {
                        return None;
                    }
                    let ct = decoded.corrected_block()?;
                    let block = Self::block_index(addr);
                    (ct, self.mac_region.get(&block).copied().unwrap_or(0))
                }
            };
            ciphertexts.push(ct);
            stored_tags.push(tag);
        }

        // Verify-before-release, one multi-message MAC pass for the
        // whole run. Any mismatch abandons the batch with nothing
        // mutated, so the sequential fallback re-derives attribution,
        // flip-and-check correction, and quarantine bit-identically.
        let nonces: Vec<(u64, u64)> = addrs.iter().copied().zip(counters).collect();
        let computed = self.cipher.mac_batch(&nonces, &ciphertexts);
        self.mac_batch_dist.record(computed.len() as u64);
        if computed
            .iter()
            .zip(&stored_tags)
            .any(|(&got, &stored)| got != stored & ame_crypto::TAG_MASK)
        {
            return None;
        }

        // All tags checked: decrypt the whole run from one pipelined
        // keystream batch.
        let keystreams = self.cipher.keystream_batch(&nonces);
        for (ct, ks) in ciphertexts.iter_mut().zip(&keystreams) {
            for (c, k) in ct.iter_mut().zip(ks.iter()) {
                *c ^= k;
            }
        }
        self.stats.reads += addrs.len() as u64;
        Some(ReadRun {
            blocks: ciphertexts,
            failed: None,
            counter_fetches: fetched.len() as u64,
        })
    }

    /// The per-block fallback of [`Self::read_blocks`]: sequential
    /// [`Self::read_block`] calls, stopping at the first failure.
    fn read_blocks_sequential(&mut self, addrs: &[u64]) -> ReadRun {
        let mut blocks = Vec::with_capacity(addrs.len());
        let mut counter_fetches = 0u64;
        for (i, &addr) in addrs.iter().enumerate() {
            counter_fetches += 1;
            match self.read_block(addr) {
                Ok(plain) => blocks.push(plain),
                Err(e) => {
                    return ReadRun {
                        blocks,
                        failed: Some((i, e)),
                        counter_fetches,
                    };
                }
            }
        }
        ReadRun {
            blocks,
            failed: None,
            counter_fetches,
        }
    }

    /// Atomically reads, verifies, transforms, and re-seals one block,
    /// returning the pre-image. Behaviourally identical to a
    /// [`Self::read_block`] followed by a [`Self::write_block`] of the
    /// transformed plaintext, but the seal reuses the verified counter
    /// fetched by the read, so the operation costs one metadata fetch
    /// instead of two.
    ///
    /// # Errors
    ///
    /// Returns a [`ReadError`] if the verified read fails; nothing is
    /// written in that case.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 64-byte aligned.
    pub fn read_modify_write_block(
        &mut self,
        addr: u64,
        f: impl FnOnce(&mut [u8; BLOCK_BYTES]),
    ) -> Result<[u8; BLOCK_BYTES], ReadError> {
        let (old, counter) = self.read_block_with_counter(addr)?;
        let mut block = old;
        f(&mut block);
        let blk = Self::block_index(addr);
        let outcome = self.counters.record_write(blk);
        let new_counter = if let WriteOutcome::Reencrypted {
            group,
            old_counters,
            new_counter,
        } = outcome
        {
            self.reencrypt_group(group, &old_counters, new_counter);
            self.counters.counter(blk)
        } else {
            // Every non-overflow outcome (increment, reset, re-encode,
            // expansion) leaves the block's counter at exactly
            // `read counter + 1` — resets and re-encodes rebalance the
            // encoding without changing counter values.
            debug_assert_eq!(self.counters.counter(blk), counter + 1);
            counter + 1
        };
        self.seal(addr, new_counter, &block);
        self.sync_tree(blk);
        self.stats.writes += 1;
        Ok(old)
    }

    fn read_mac_in_ecc(
        &mut self,
        addr: u64,
        counter: u64,
        stored: StoredBlock,
    ) -> Result<[u8; BLOCK_BYTES], ReadError> {
        let sideband = MacSideband::from_bytes(stored.sideband);
        // Recover the MAC through its own 7-bit SEC-DED first (Section
        // 3.3): a flipped MAC bit must not masquerade as a data error.
        let (tag, corrected_sideband) = match sideband.recover_tag() {
            DecodeOutcome::Clean { word } => (word, false),
            DecodeOutcome::CorrectedData { word, .. } | DecodeOutcome::CorrectedCheck { word } => {
                self.stats.mac_corrections += 1;
                (word, true)
            }
            DecodeOutcome::DoubleError | DecodeOutcome::Uncorrectable => {
                self.stats.failed_reads += 1;
                return Err(ReadError::MacUncorrectable);
            }
        };

        if self.cipher.verify_block(addr, counter, &stored.data, tag) {
            if corrected_sideband {
                // Scrub the corrected side-band back, exactly as corrected
                // data is scrubbed below: a correctable MAC flip left in
                // place would accumulate with the next one into an
                // uncorrectable double error (Section 3.3's scrubbing
                // argument applies to the MAC's own bits too).
                self.storage.write(
                    addr,
                    StoredBlock {
                        data: stored.data,
                        sideband: MacSideband::new(tag, &stored.data).to_bytes(),
                    },
                );
            }
            self.stats.reads += 1;
            return Ok(self.cipher.decrypt_block(addr, counter, &stored.data));
        }

        // MAC mismatch: attempt flip-and-check error correction.
        let outcome = correction::flip_and_check(
            &self.cipher,
            addr,
            counter,
            &stored.data,
            tag,
            self.config.max_correctable_flips,
        );
        self.stats.flip_checks += outcome.checks;
        self.flip_check_dist.record(outcome.checks);
        if let Some(fixed) = outcome.corrected {
            // Scrub the repaired block back to memory.
            let sb = MacSideband::new(tag, &fixed).to_bytes();
            self.storage.write(
                addr,
                StoredBlock {
                    data: fixed,
                    sideband: sb,
                },
            );
            self.stats.data_corrections += 1;
            self.stats.reads += 1;
            return Ok(self.cipher.decrypt_block(addr, counter, &fixed));
        }
        self.stats.failed_reads += 1;
        Err(ReadError::IntegrityViolation)
    }

    fn read_separate_mac(
        &mut self,
        addr: u64,
        counter: u64,
        stored: StoredBlock,
    ) -> Result<[u8; BLOCK_BYTES], ReadError> {
        let sideband = StandardSideband::from_bytes(stored.sideband);
        let decoded = sideband.decode(&stored.data);
        let Some(ct) = decoded.corrected_block() else {
            self.stats.failed_reads += 1;
            return Err(ReadError::EccUncorrectable);
        };
        if decoded.any_error() {
            self.stats.data_corrections += 1;
            // Scrub the corrected data back.
            let sb = StandardSideband::encode(&ct).to_bytes();
            self.storage.write(
                addr,
                StoredBlock {
                    data: ct,
                    sideband: sb,
                },
            );
        }
        let block = Self::block_index(addr);
        let tag = self.mac_region.get(&block).copied().unwrap_or(0);
        if self.cipher.verify_block(addr, counter, &ct, tag) {
            self.stats.reads += 1;
            Ok(self.cipher.decrypt_block(addr, counter, &ct))
        } else {
            self.stats.failed_reads += 1;
            Err(ReadError::IntegrityViolation)
        }
    }

    // ---- attacker / fault-injection surface ----

    /// Flips one stored ciphertext bit (`0..512`), as a DRAM fault or a
    /// physical attacker would.
    pub fn tamper_data_bit(&mut self, addr: u64, bit: u32) {
        self.ensure_initialized(addr);
        self.storage.flip_data_bit(addr, bit);
    }

    /// Flips one stored ECC side-band bit (`0..64`).
    pub fn tamper_sideband_bit(&mut self, addr: u64, bit: u32) {
        self.ensure_initialized(addr);
        self.storage.flip_sideband_bit(addr, bit);
    }

    /// Captures all off-chip state of a block for a later replay.
    #[must_use]
    pub fn snapshot_block(&mut self, addr: u64) -> BlockSnapshot {
        self.ensure_initialized(addr);
        let block = Self::block_index(addr);
        let meta = self.counters.metadata_block_of(block);
        BlockSnapshot {
            addr,
            stored: self.storage.read(addr),
            meta_leaf: Some(self.tree.inner_mut().snapshot_leaf(meta)),
            mac_entry: self.mac_region.get(&block).copied(),
        }
    }

    /// Replays a snapshot: restores the stored block, the separate MAC (if
    /// any), the counter metadata block and its stored leaf MAC — every
    /// bit an attacker with physical DRAM access can restore. The on-chip
    /// tree root is out of reach, so a stale replay is detected.
    pub fn replay_block(&mut self, snapshot: &BlockSnapshot) {
        let block = Self::block_index(snapshot.addr);
        let meta = self.counters.metadata_block_of(block);
        self.storage.write(snapshot.addr, snapshot.stored);
        if let Some(tag) = snapshot.mac_entry {
            self.mac_region.insert(block, tag);
        }
        if let Some(leaf) = snapshot.meta_leaf {
            self.tree.inner_mut().replay_leaf(meta, leaf);
        }
    }

    /// Direct access to the integrity tree (for tampering experiments).
    pub fn tree_mut(&mut self) -> &mut BonsaiTree {
        self.tree.inner_mut()
    }

    /// Counter-cache hit/miss statistics, if the cache is enabled.
    #[must_use]
    pub fn counter_cache_stats(&self) -> Option<ame_tree::cache::CounterCacheStats> {
        match &self.tree {
            TreeFrontend::Plain(_) => None,
            TreeFrontend::Cached(t) => Some(t.stats()),
        }
    }

    /// Direct access to the functional DRAM array (for scrubbing and
    /// fault-injection experiments).
    pub fn storage_mut(&mut self) -> &mut DramStorage {
        &mut self.storage
    }

    /// Current counter value of the block at `addr`.
    #[must_use]
    pub fn counter_of(&self, addr: u64) -> u64 {
        self.counters.counter(Self::block_index(addr))
    }

    /// How many data blocks share one packed counter/metadata block under
    /// the configured scheme — the upper bound on what a single verified
    /// fetch can amortize across a fused read run.
    #[must_use]
    pub fn blocks_per_metadata_block(&self) -> usize {
        self.counters.blocks_per_metadata_block()
    }

    /// Re-keys the engine: derives fresh keys from `new_seed`, re-encrypts
    /// every resident block under the new keys (and fresh counters), and
    /// rebuilds the integrity tree.
    ///
    /// A real engine performs this when its keys must rotate — e.g. if the
    /// 56-bit reference counter ever approached exhaustion, or on a policy
    /// schedule. All previously captured off-chip snapshots become useless
    /// to an attacker: they neither decrypt nor verify under the new keys.
    ///
    /// # Errors
    ///
    /// Returns the first [`ReadError`] encountered while verifying the old
    /// contents; the engine is left unchanged in that case (re-keying
    /// must not launder corrupted state into fresh MACs).
    pub fn rekey(&mut self, new_seed: u64) -> Result<(), ReadError> {
        // 1. Read and verify everything under the current keys.
        let addrs: Vec<u64> = self.resident_addrs();
        let mut plain = Vec::with_capacity(addrs.len());
        for &addr in &addrs {
            plain.push((addr, self.read_block(addr)?));
        }
        // 2. Swap in fresh key material and empty metadata.
        self.config.seed = new_seed;
        self.cipher = MemoryCipher::from_seed(new_seed);
        let bonsai = BonsaiTree::new(
            MemoryCipher::from_seed(new_seed ^ 0x7ee),
            self.config.tree_levels,
            8,
        );
        self.tree = if self.config.counter_cache_blocks > 0 {
            TreeFrontend::Cached(CachedTree::new(bonsai, self.config.counter_cache_blocks))
        } else {
            TreeFrontend::Plain(bonsai)
        };
        self.counters = self.config.counter_scheme.build();
        self.storage = DramStorage::new();
        self.mac_region.clear();
        // 3. Seal the contents back under the new keys.
        for (addr, data) in plain {
            self.write_block(addr, &data);
        }
        Ok(())
    }

    /// Block-aligned addresses currently resident in storage.
    fn resident_addrs(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.storage.addrs().collect();
        v.sort_unstable();
        v
    }

    // ---- durable storage plane ----

    /// Section magic of the frozen engine image.
    const MAGIC: &'static [u8; 8] = b"AMEENGIN";
    /// Section version of the frozen engine image.
    const VERSION: u32 = 1;

    /// Exports a block's complete *sealed* state — ciphertext, side-band,
    /// counter, and (in separate-MAC mode) its MAC-region tag. This is
    /// what a write-intent log records: no plaintext, nothing an attacker
    /// reading the log learns beyond what DRAM already exposes.
    pub fn export_sealed(&mut self, addr: u64) -> SealedBlockState {
        self.ensure_initialized(addr);
        let block = Self::block_index(addr);
        SealedBlockState {
            stored: self.storage.read(addr),
            counter: self.counters.counter(block),
            mac: self.mac_region.get(&block).copied(),
        }
    }

    /// Re-installs a sealed block state captured by
    /// [`Self::export_sealed`] (write-intent log replay): restores the
    /// counter *value*, the stored bits, and the MAC-region tag, then
    /// re-syncs the counter leaf into the integrity tree. The replayed
    /// block is not trusted by fiat — its MAC binds (address, counter,
    /// ciphertext), so a forged record fails the next verified read.
    ///
    /// # Errors
    ///
    /// `InvalidData` if the counter value cannot be represented in its
    /// group's current state (evidence of a corrupt or forged log).
    pub fn apply_sealed(&mut self, addr: u64, state: &SealedBlockState) -> io::Result<()> {
        let block = Self::block_index(addr);
        self.counters.force_counter(block, state.counter)?;
        if let Some(tag) = state.mac {
            self.mac_region.insert(block, tag);
        }
        self.storage.write(addr, state.stored);
        self.sync_tree(block);
        Ok(())
    }

    /// Applies a *run* of sealed block states in one pass — the recovery
    /// analogue of the batched write path. The per-block effects (counter
    /// restore, MAC-region tag, stored bits) are identical to calling
    /// [`Self::apply_sealed`] per entry, but the integrity-tree re-sync is
    /// deduplicated to one [`Self::sync_tree`] per *distinct metadata
    /// block* touched by the run: the tree leaf image is a pure function
    /// of the final counter state, so syncing once after all counters in
    /// a leaf are restored yields the same tree bit-for-bit while skipping
    /// the redundant intermediate hashes a per-record replay would pay.
    ///
    /// # Errors
    ///
    /// `InvalidData` from the first entry whose counter value cannot be
    /// represented (corrupt or forged log). Entries before the failure
    /// are applied and their metadata blocks synced, so the engine is
    /// left tree-consistent even on error; the caller abandons recovery
    /// anyway.
    pub fn apply_sealed_run(&mut self, entries: &[(u64, SealedBlockState)]) -> io::Result<()> {
        let mut metas: Vec<u64> = Vec::with_capacity(entries.len());
        let result = entries.iter().try_for_each(|(addr, state)| {
            let block = Self::block_index(*addr);
            self.counters.force_counter(block, state.counter)?;
            if let Some(tag) = state.mac {
                self.mac_region.insert(block, tag);
            }
            self.storage.write(*addr, state.stored);
            metas.push(self.counters.metadata_block_of(block));
            Ok(())
        });
        metas.sort_unstable();
        metas.dedup();
        for meta in metas {
            let image = self.counters.metadata_block_image(meta);
            self.tree.write_counter_block(meta, image);
        }
        result
    }

    /// Reads and verifies every resident block (tree walk + MAC check),
    /// returning how many blocks were verified. Recovery calls this
    /// before a thawed engine serves a single request.
    ///
    /// # Errors
    ///
    /// The first [`ReadError`] encountered; the caller must treat the
    /// engine as compromised (quarantine, not serve).
    pub fn verify_all(&mut self) -> Result<u64, ReadError> {
        let addrs = self.resident_addrs();
        for &addr in &addrs {
            self.read_block(addr)?;
        }
        Ok(addrs.len() as u64)
    }

    /// Serializes the engine's complete sealed state — configuration,
    /// statistics, storage, counters, integrity tree, and MAC region —
    /// into one checksummed section appended to `out`. Only ciphertext
    /// and authentication metadata are captured; no plaintext leaves the
    /// engine. The cipher itself is not serialized: keys are re-derived
    /// from the seed at thaw.
    ///
    /// **The image is not confidential at rest.** The key-derivation
    /// seed (`config.seed`) is embedded in cleartext so thaw can
    /// re-derive the cipher, which means anyone who can read the frozen
    /// image can decrypt every block in it. Freezing preserves the
    /// *integrity* contract (tampered images fail the checksum, MAC, or
    /// tree re-verification) but secrecy of the image itself is the
    /// caller's problem — file permissions, disk encryption, or an
    /// external key store. This matches the simulator's threat model,
    /// where the seed stands in for an on-die key that real hardware
    /// would never export.
    pub fn freeze_into(&self, out: &mut Vec<u8>) {
        let mut payload = Vec::new();
        put_u64(&mut payload, self.config.seed);
        payload.push(match self.config.mac_placement {
            MacPlacement::SeparateMac => 0,
            MacPlacement::MacInEcc => 1,
        });
        payload.push(match self.config.counter_scheme {
            CounterSchemeKind::Monolithic => 0,
            CounterSchemeKind::Split => 1,
            CounterSchemeKind::Delta => 2,
            CounterSchemeKind::DualLength => 3,
        });
        put_u32(&mut payload, self.config.max_correctable_flips);
        put_u64(&mut payload, self.config.tree_levels as u64);
        put_u64(&mut payload, self.config.counter_cache_blocks as u64);
        payload.push(u8::from(self.config.prefetch_counters));
        put_u64(&mut payload, self.stats.reads);
        put_u64(&mut payload, self.stats.writes);
        put_u64(&mut payload, self.stats.reencrypted_blocks);
        put_u64(&mut payload, self.stats.mac_corrections);
        put_u64(&mut payload, self.stats.data_corrections);
        put_u64(&mut payload, self.stats.flip_checks);
        put_u64(&mut payload, self.stats.failed_reads);
        self.storage.encode(&mut payload);
        self.counters.encode_state(&mut payload);
        self.tree.inner().encode_state(&mut payload);
        let mut blocks: Vec<u64> = self.mac_region.keys().copied().collect();
        blocks.sort_unstable();
        put_u64(&mut payload, blocks.len() as u64);
        for block in blocks {
            put_u64(&mut payload, block);
            put_u64(&mut payload, self.mac_region[&block]);
        }
        write_section(out, Self::MAGIC, Self::VERSION, &payload);
    }

    /// Rebuilds an engine from a section produced by
    /// [`Self::freeze_into`], advancing the reader past it. Keys are
    /// re-derived from the stored seed; the counter cache (if any) comes
    /// back cold. The thawed engine is *not* yet trusted — callers run
    /// [`Self::verify_all`] before serving.
    ///
    /// # Errors
    ///
    /// `InvalidData` on a framing/checksum failure anywhere in the image
    /// or internally inconsistent decoded state.
    pub fn thaw_from(r: &mut ByteReader<'_>) -> io::Result<Self> {
        let (version, mut payload) = read_section(r, Self::MAGIC)?;
        if version != Self::VERSION {
            return Err(invalid_data(format!(
                "unsupported engine image version {version}"
            )));
        }
        let seed = payload.u64()?;
        let mac_placement = match payload.u8()? {
            0 => MacPlacement::SeparateMac,
            1 => MacPlacement::MacInEcc,
            other => return Err(invalid_data(format!("unknown MAC placement {other}"))),
        };
        let counter_scheme = match payload.u8()? {
            0 => CounterSchemeKind::Monolithic,
            1 => CounterSchemeKind::Split,
            2 => CounterSchemeKind::Delta,
            3 => CounterSchemeKind::DualLength,
            other => return Err(invalid_data(format!("unknown counter scheme {other}"))),
        };
        let config = EngineConfig {
            seed,
            mac_placement,
            counter_scheme,
            max_correctable_flips: payload.u32()?,
            tree_levels: payload.u64()? as usize,
            counter_cache_blocks: payload.u64()? as usize,
            prefetch_counters: payload.u8()? != 0,
        };
        let stats = EngineStats {
            reads: payload.u64()?,
            writes: payload.u64()?,
            reencrypted_blocks: payload.u64()?,
            mac_corrections: payload.u64()?,
            data_corrections: payload.u64()?,
            flip_checks: payload.u64()?,
            failed_reads: payload.u64()?,
        };
        let storage = DramStorage::decode(&mut payload)?;
        let mut counters = counter_scheme.build();
        counters.decode_state(&mut payload)?;
        let bonsai = BonsaiTree::decode_state(MemoryCipher::from_seed(seed ^ 0x7ee), &mut payload)?;
        let tree = if config.counter_cache_blocks > 0 {
            TreeFrontend::Cached(CachedTree::new(bonsai, config.counter_cache_blocks))
        } else {
            TreeFrontend::Plain(bonsai)
        };
        let count = payload.u64()? as usize;
        let mut mac_region = HashMap::with_capacity(count.min(1 << 24));
        for _ in 0..count {
            let block = payload.u64()?;
            let tag = payload.u64()?;
            mac_region.insert(block, tag);
        }
        Ok(Self {
            config,
            cipher: MemoryCipher::from_seed(seed),
            counters,
            tree,
            storage,
            mac_region,
            stats,
            flip_check_dist: ame_telemetry::Histogram::new(),
            mac_batch_dist: ame_telemetry::Histogram::new(),
        })
    }
}

/// A single block's sealed state as captured by
/// [`MemoryEncryptionEngine::export_sealed`]: ciphertext + side-band, the
/// counter it was sealed under, and the separate-MAC tag if the engine
/// stores MACs in a dedicated region. This is the unit a write-intent log
/// records — everything needed to restore the block, nothing plaintext.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SealedBlockState {
    stored: StoredBlock,
    counter: u64,
    mac: Option<u64>,
}

impl SealedBlockState {
    /// The counter this block was sealed under.
    #[must_use]
    pub fn counter(&self) -> u64 {
        self.counter
    }

    /// Serializes the state (fixed 82-byte layout, no framing — callers
    /// wrap records in their own checksummed framing).
    pub fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, self.counter);
        match self.mac {
            Some(tag) => {
                out.push(1);
                put_u64(out, tag);
            }
            None => {
                out.push(0);
                put_u64(out, 0);
            }
        }
        out.extend_from_slice(&self.stored.data);
        out.extend_from_slice(&self.stored.sideband);
    }

    /// Decodes a state written by [`Self::encode`], advancing the reader.
    ///
    /// # Errors
    ///
    /// `InvalidData` on truncation.
    pub fn decode(r: &mut ByteReader<'_>) -> io::Result<Self> {
        let counter = r.u64()?;
        let has_mac = r.u8()? != 0;
        let tag = r.u64()?;
        let data: [u8; BLOCK_BYTES] = r.array()?;
        let sideband: [u8; 8] = r.array()?;
        Ok(Self {
            stored: StoredBlock { data, sideband },
            counter,
            mac: has_mac.then_some(tag),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine(placement: MacPlacement, scheme: CounterSchemeKind) -> MemoryEncryptionEngine {
        MemoryEncryptionEngine::new(EngineConfig {
            mac_placement: placement,
            counter_scheme: scheme,
            ..EngineConfig::default()
        })
    }

    fn all_configs() -> Vec<MemoryEncryptionEngine> {
        let mut v = Vec::new();
        for p in [MacPlacement::MacInEcc, MacPlacement::SeparateMac] {
            for s in [
                CounterSchemeKind::Monolithic,
                CounterSchemeKind::Split,
                CounterSchemeKind::Delta,
                CounterSchemeKind::DualLength,
            ] {
                v.push(engine(p, s));
            }
        }
        v
    }

    #[test]
    fn roundtrip_all_configs() {
        for mut e in all_configs() {
            let mut pat = [0u8; 64];
            for (i, b) in pat.iter_mut().enumerate() {
                *b = i as u8;
            }
            e.write_block(0x1000, &pat);
            e.write_block(0x1040, &[9; 64]);
            assert_eq!(e.read_block(0x1000).unwrap(), pat, "{:?}", e.config());
            assert_eq!(e.read_block(0x1040).unwrap(), [9; 64]);
        }
    }

    #[test]
    fn unwritten_blocks_read_zero() {
        for mut e in all_configs() {
            assert_eq!(e.read_block(0x8000).unwrap(), [0u8; 64], "{:?}", e.config());
        }
    }

    #[test]
    fn overwrite_bumps_counter_and_changes_ciphertext() {
        let mut e = engine(MacPlacement::MacInEcc, CounterSchemeKind::Delta);
        e.write_block(0, &[1; 64]);
        let c1 = e.counter_of(0);
        let ct1 = e.snapshot_block(0).stored.data;
        e.write_block(0, &[1; 64]);
        let c2 = e.counter_of(0);
        let ct2 = e.snapshot_block(0).stored.data;
        assert!(c2 > c1);
        assert_ne!(
            ct1, ct2,
            "same plaintext, fresh counter => fresh ciphertext"
        );
        assert_eq!(e.read_block(0).unwrap(), [1; 64]);
    }

    #[test]
    fn single_data_flip_corrected_mac_in_ecc() {
        let mut e = engine(MacPlacement::MacInEcc, CounterSchemeKind::Delta);
        e.write_block(0x40, &[0xab; 64]);
        e.tamper_data_bit(0x40, 313);
        assert_eq!(e.read_block(0x40).unwrap(), [0xab; 64]);
        assert_eq!(e.stats().data_corrections, 1);
        // The block was scrubbed: the next read is clean.
        assert_eq!(e.read_block(0x40).unwrap(), [0xab; 64]);
        assert_eq!(e.stats().data_corrections, 1);
    }

    #[test]
    fn double_data_flip_same_word_corrected_mac_in_ecc() {
        // The case standard SEC-DED cannot handle (Figure 3).
        let mut e = engine(MacPlacement::MacInEcc, CounterSchemeKind::Delta);
        e.write_block(0x40, &[0x5a; 64]);
        e.tamper_data_bit(0x40, 8);
        e.tamper_data_bit(0x40, 9);
        assert_eq!(e.read_block(0x40).unwrap(), [0x5a; 64]);
        assert_eq!(e.stats().data_corrections, 1);
        assert!(e.stats().flip_checks > 512, "needed the double-flip search");
    }

    #[test]
    fn double_flip_same_word_uncorrectable_with_separate_mac() {
        let mut e = engine(MacPlacement::SeparateMac, CounterSchemeKind::Delta);
        e.write_block(0x40, &[0x5a; 64]);
        e.tamper_data_bit(0x40, 8);
        e.tamper_data_bit(0x40, 9);
        assert_eq!(e.read_block(0x40), Err(ReadError::EccUncorrectable));
    }

    #[test]
    fn scattered_flips_corrected_by_standard_ecc_not_by_mac() {
        // One flip in each of 3 words: standard ECC corrects all three;
        // MAC-based flip-and-check (budget 2) cannot.
        let mut sep = engine(MacPlacement::SeparateMac, CounterSchemeKind::Delta);
        sep.write_block(0, &[3; 64]);
        for w in 0..3 {
            sep.tamper_data_bit(0, w * 64 + 5);
        }
        assert_eq!(sep.read_block(0).unwrap(), [3; 64]);

        let mut mie = engine(MacPlacement::MacInEcc, CounterSchemeKind::Delta);
        mie.write_block(0, &[3; 64]);
        for w in 0..3 {
            mie.tamper_data_bit(0, w * 64 + 5);
        }
        assert_eq!(mie.read_block(0), Err(ReadError::IntegrityViolation));
    }

    #[test]
    fn mac_bit_flip_corrected_by_mac_parity() {
        let mut e = engine(MacPlacement::MacInEcc, CounterSchemeKind::Delta);
        e.write_block(0, &[1; 64]);
        e.tamper_sideband_bit(0, 20); // inside the 56-bit MAC field
        assert_eq!(e.read_block(0).unwrap(), [1; 64]);
        assert_eq!(e.stats().mac_corrections, 1);
        assert_eq!(e.stats().data_corrections, 0, "no bogus data correction");
    }

    #[test]
    fn double_mac_flip_detected() {
        let mut e = engine(MacPlacement::MacInEcc, CounterSchemeKind::Delta);
        e.write_block(0, &[1; 64]);
        e.tamper_sideband_bit(0, 20);
        e.tamper_sideband_bit(0, 41);
        assert_eq!(e.read_block(0), Err(ReadError::MacUncorrectable));
    }

    #[test]
    fn replay_attack_detected() {
        for scheme in [CounterSchemeKind::Delta, CounterSchemeKind::Monolithic] {
            let mut e = engine(MacPlacement::MacInEcc, scheme);
            e.write_block(0x100, &[1; 64]);
            let snap = e.snapshot_block(0x100);
            e.write_block(0x100, &[2; 64]);
            e.replay_block(&snap);
            let err = e.read_block(0x100).unwrap_err();
            assert!(matches!(err, ReadError::Tree(_)), "{scheme:?}: got {err:?}");
        }
    }

    #[test]
    fn spliced_block_rejected() {
        // Moving valid ciphertext to a different address fails its MAC
        // (address-bound tags).
        let mut e = engine(MacPlacement::MacInEcc, CounterSchemeKind::Delta);
        e.write_block(0x000, &[7; 64]);
        e.write_block(0x040, &[8; 64]);
        let a = e.snapshot_block(0x000);
        // Write block A's stored bits at address B. Counters of both
        // blocks are equal (1), so only the address binding can catch it.
        e.storage.write(0x040, a.stored);
        assert_eq!(e.read_block(0x040), Err(ReadError::IntegrityViolation));
    }

    #[test]
    fn group_reencryption_preserves_contents() {
        // 7-bit deltas overflow after 128 writes to one block; the whole
        // 64-block group re-encrypts and every resident block survives.
        let mut e = engine(MacPlacement::MacInEcc, CounterSchemeKind::Delta);
        for b in 0..10u64 {
            e.write_block(b * 64, &[b as u8 + 1; 64]);
        }
        for _ in 0..200 {
            e.write_block(0, &[0xEE; 64]);
        }
        assert!(e.counter_stats().reencryptions >= 1);
        assert!(e.stats().reencrypted_blocks >= 9);
        assert_eq!(e.read_block(0).unwrap(), [0xEE; 64]);
        for b in 1..10u64 {
            assert_eq!(
                e.read_block(b * 64).unwrap(),
                [b as u8 + 1; 64],
                "block {b}"
            );
        }
    }

    #[test]
    fn split_counter_reencryption_preserves_contents() {
        let mut e = engine(MacPlacement::MacInEcc, CounterSchemeKind::Split);
        e.write_block(64, &[0x11; 64]);
        for _ in 0..130 {
            e.write_block(0, &[0x22; 64]);
        }
        assert!(e.counter_stats().reencryptions >= 1);
        assert_eq!(e.read_block(64).unwrap(), [0x11; 64]);
        assert_eq!(e.read_block(0).unwrap(), [0x22; 64]);
    }

    #[test]
    fn correction_disabled_reports_violation() {
        let mut e = MemoryEncryptionEngine::new(EngineConfig {
            max_correctable_flips: 0,
            ..EngineConfig::default()
        });
        e.write_block(0, &[1; 64]);
        e.tamper_data_bit(0, 0);
        assert_eq!(e.read_block(0), Err(ReadError::IntegrityViolation));
        assert_eq!(e.stats().flip_checks, 0);
    }

    #[test]
    fn rekey_preserves_contents_and_invalidates_snapshots() {
        let mut e = engine(MacPlacement::MacInEcc, CounterSchemeKind::Delta);
        for b in 0..8u64 {
            e.write_block(b * 64, &[b as u8 + 1; 64]);
        }
        let old_ct = e.snapshot_block(0);
        e.rekey(0xfeed).unwrap();
        // Contents survive under the new keys.
        for b in 0..8u64 {
            assert_eq!(
                e.read_block(b * 64).unwrap(),
                [b as u8 + 1; 64],
                "block {b}"
            );
        }
        // Ciphertext changed (fresh keys), and replaying pre-rekey state
        // is rejected.
        assert_ne!(e.snapshot_block(0).stored_data(), old_ct.stored_data());
        e.replay_block(&old_ct);
        assert!(e.read_block(0).is_err());
    }

    #[test]
    fn rekey_refuses_corrupted_state() {
        let mut e = MemoryEncryptionEngine::new(EngineConfig {
            max_correctable_flips: 0,
            ..EngineConfig::default()
        });
        e.write_block(0, &[1; 64]);
        e.write_block(64, &[2; 64]);
        for bit in [0u32, 9, 100] {
            e.tamper_data_bit(64, bit);
        }
        assert!(
            e.rekey(0x1234).is_err(),
            "must not launder corrupted blocks"
        );
    }

    #[test]
    fn rekey_works_across_schemes() {
        for scheme in [CounterSchemeKind::Split, CounterSchemeKind::DualLength] {
            let mut e = engine(MacPlacement::SeparateMac, scheme);
            for _ in 0..150 {
                e.write_block(0, &[7; 64]); // through overflows
            }
            e.rekey(42).unwrap();
            assert_eq!(e.read_block(0).unwrap(), [7; 64], "{scheme:?}");
            assert_eq!(e.counter_of(0), 1, "fresh counters after rekey");
        }
    }

    #[test]
    fn counter_cache_serves_hot_counters() {
        let mut e = MemoryEncryptionEngine::new(EngineConfig {
            counter_cache_blocks: 8,
            ..EngineConfig::default()
        });
        e.write_block(0, &[1; 64]);
        for _ in 0..20 {
            let _ = e.read_block(0).unwrap();
        }
        let stats = e.counter_cache_stats().expect("cache enabled");
        assert!(stats.hits >= 20, "hot counter block must hit ({stats:?})");
        assert!(stats.hit_rate() > 0.9);
    }

    #[test]
    fn counter_cache_preserves_functional_behaviour() {
        // Same traffic with and without the cache: identical plaintext
        // results and identical counters.
        let plain_cfg = EngineConfig {
            counter_cache_blocks: 0,
            ..EngineConfig::default()
        };
        let cached_cfg = EngineConfig {
            counter_cache_blocks: 4,
            ..EngineConfig::default()
        };
        let mut a = MemoryEncryptionEngine::new(plain_cfg);
        let mut b = MemoryEncryptionEngine::new(cached_cfg);
        for i in 0..300u64 {
            let addr = (i % 20) * 64;
            let data = [(i % 255) as u8; 64];
            a.write_block(addr, &data);
            b.write_block(addr, &data);
            assert_eq!(a.read_block(addr).unwrap(), b.read_block(addr).unwrap());
            assert_eq!(a.counter_of(addr), b.counter_of(addr));
        }
    }

    #[test]
    fn counter_cache_shields_tampering_until_eviction() {
        // Cached counter metadata behaves like real hardware: an off-chip
        // tamper is invisible while the verified copy is on-chip.
        let mut e = MemoryEncryptionEngine::new(EngineConfig {
            counter_cache_blocks: 1,
            ..EngineConfig::default()
        });
        e.write_block(0, &[1; 64]);
        e.tree_mut().tamper_counter_block(0, |img| img[0] ^= 1);
        assert!(e.read_block(0).is_ok(), "cached copy still serves");
        // Touch a different counter group to evict the cached block
        // (group size 64 blocks -> block 64 is group 1).
        e.write_block(64 * 64, &[2; 64]);
        assert!(e.read_block(0).is_err(), "re-fetch catches the tamper");
    }

    #[test]
    fn engine_is_send() {
        // Shards hand whole engines (and the regions wrapping them) to
        // dedicated worker threads; a non-Send field sneaking in must
        // fail compilation, not a downstream crate.
        fn assert_send<T: Send>() {}
        assert_send::<MemoryEncryptionEngine>();
        assert_send::<crate::region::SecureRegion>();
        assert_send::<EngineConfig>();
    }

    #[test]
    fn shard_seeds_are_distinct_and_deterministic() {
        let base = EngineConfig::default();
        let mut seeds: Vec<u64> = (0..16).map(|s| base.for_shard(s).seed).collect();
        assert_eq!(base.for_shard(3).seed, seeds[3], "derivation is stable");
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 16, "no two shards share a seed");
        assert!(
            !seeds.contains(&base.seed),
            "shard seeds differ from the base"
        );
    }

    #[test]
    fn tenant_seeds_are_distinct_and_backward_compatible() {
        let base = EngineConfig::default();
        // Tenant 0 is bit-identical to the historical single-tenant
        // derivation: stores persisted before tenancy re-derive keys.
        for s in 0..8 {
            assert_eq!(base.for_tenant(0, s).seed, base.for_shard(s).seed);
        }
        // Every (tenant, shard) cell of a 8×8 grid gets its own seed.
        let mut seeds: Vec<u64> = (0..8)
            .flat_map(|t| (0..8).map(move |s| (t, s)))
            .map(|(t, s)| base.for_tenant(t, s).seed)
            .collect();
        assert_eq!(base.for_tenant(5, 3).seed, seeds[5 * 8 + 3], "stable");
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 64, "no two (tenant, shard) cells share a seed");
        assert!(!seeds.contains(&base.seed), "all differ from the base");
    }

    #[test]
    fn stats_accumulate() {
        let mut e = engine(MacPlacement::MacInEcc, CounterSchemeKind::Delta);
        e.write_block(0, &[1; 64]);
        let _ = e.read_block(0);
        let _ = e.read_block(64);
        assert_eq!(e.stats().writes, 1);
        assert_eq!(e.stats().reads, 2);
        assert_eq!(e.stats().failed_reads, 0);
    }

    #[test]
    fn write_blocks_matches_sequential_writes() {
        // The batched seal path must be behaviourally identical to one
        // write_block call per item — same counters, same readback — for
        // a batch with duplicate addresses and interleaved blocks.
        let mut batched = engine(MacPlacement::MacInEcc, CounterSchemeKind::Delta);
        let mut sequential = engine(MacPlacement::MacInEcc, CounterSchemeKind::Delta);
        let items: Vec<(u64, [u8; 64])> = (0..48u64)
            .map(|i| ((i % 12) * 64, [(i as u8).wrapping_mul(7); 64]))
            .collect();
        batched.write_blocks(&items);
        for &(addr, ref data) in &items {
            sequential.write_block(addr, data);
        }
        assert_eq!(batched.stats().writes, sequential.stats().writes);
        for b in 0..12u64 {
            let addr = b * 64;
            assert_eq!(batched.counter_of(addr), sequential.counter_of(addr));
            assert_eq!(
                batched.read_block(addr).unwrap(),
                sequential.read_block(addr).unwrap(),
                "block {b}"
            );
        }
    }

    #[test]
    fn write_blocks_survives_counter_overflow_mid_batch() {
        // Hammering a small set of same-group blocks far past the counter
        // wrap point forces group re-encryptions to land *inside* batches
        // with pending (not yet sealed) writes. Every block must still
        // verify afterwards — a stale-counter seal would poison the read.
        for scheme in [CounterSchemeKind::Delta, CounterSchemeKind::Split] {
            let mut e = engine(MacPlacement::MacInEcc, scheme);
            let mut last = std::collections::HashMap::new();
            for round in 0..200u64 {
                let items: Vec<(u64, [u8; 64])> = (0..16u64)
                    .map(|i| {
                        let addr = (i % 4) * 64;
                        let data = [(round as u8).wrapping_add(i as u8); 64];
                        last.insert(addr, data);
                        (addr, data)
                    })
                    .collect();
                e.write_blocks(&items);
            }
            assert!(
                e.counter_stats().reencryptions > 0,
                "{scheme:?}: the campaign must cross at least one overflow"
            );
            for (&addr, &data) in &last {
                assert_eq!(e.read_block(addr).unwrap(), data, "{scheme:?} addr {addr}");
            }
        }
    }

    #[test]
    fn read_blocks_matches_sequential_reads() {
        // The batched fast path must release the exact plaintext and
        // statistics a loop of read_block calls would — for every MAC
        // placement and counter scheme, including duplicate addresses.
        for mut e in all_configs() {
            let addrs: Vec<u64> = (0..24u64).map(|i| (i % 10) * 64).collect();
            for (i, &addr) in addrs.iter().enumerate() {
                e.write_block(addr, &[(i as u8).wrapping_mul(13); 64]);
            }
            let mut sequential = Vec::new();
            let mut scalar = engine(e.config().mac_placement, e.config().counter_scheme);
            for (i, &addr) in addrs.iter().enumerate() {
                scalar.write_block(addr, &[(i as u8).wrapping_mul(13); 64]);
            }
            for &addr in &addrs {
                sequential.push(scalar.read_block(addr).unwrap());
            }
            let run = e.read_blocks(&addrs);
            assert!(run.failed.is_none(), "{:?}", e.config());
            assert_eq!(run.blocks, sequential, "{:?}", e.config());
            assert_eq!(e.stats().reads, scalar.stats().reads);
            assert_eq!(e.stats().failed_reads, 0);
        }
    }

    #[test]
    fn read_blocks_amortizes_counter_fetches() {
        // A consecutive run inside one packed counter block costs exactly
        // one verified fetch; a run crossing the boundary costs two.
        for mut e in all_configs() {
            let per_meta = e.blocks_per_metadata_block() as u64;
            let within: Vec<u64> = (0..per_meta.min(8)).map(|b| b * 64).collect();
            for &addr in &within {
                e.write_block(addr, &[3; 64]);
            }
            let run = e.read_blocks(&within);
            assert!(run.failed.is_none());
            assert_eq!(run.counter_fetches, 1, "{:?}", e.config());

            // Two blocks straddling the metadata boundary.
            let straddle = [(per_meta - 1) * 64, per_meta * 64];
            for &addr in &straddle {
                e.write_block(addr, &[4; 64]);
            }
            let run = e.read_blocks(&straddle);
            assert!(run.failed.is_none());
            assert_eq!(run.counter_fetches, 2, "{:?}", e.config());
        }
    }

    #[test]
    fn read_blocks_with_uninitialized_block_falls_back() {
        // An untouched block mid-run must not be initialized ahead of its
        // neighbours' verification; the run falls back to the sequential
        // path and still reads zeros for it.
        let mut e = engine(MacPlacement::MacInEcc, CounterSchemeKind::Delta);
        e.write_block(0, &[1; 64]);
        e.write_block(128, &[2; 64]);
        let run = e.read_blocks(&[0, 64, 128]);
        assert!(run.failed.is_none());
        assert_eq!(run.blocks, vec![[1; 64], [0; 64], [2; 64]]);
        assert_eq!(run.counter_fetches, 3, "fallback fetches per block");
    }

    #[test]
    fn read_blocks_survives_group_reencryption() {
        // After counter-overflow re-encryptions the fused path must still
        // verify and decrypt the run correctly.
        let mut e = engine(MacPlacement::MacInEcc, CounterSchemeKind::Delta);
        for round in 0..200u64 {
            for b in 0..4u64 {
                e.write_block(b * 64, &[(round as u8).wrapping_add(b as u8); 64]);
            }
        }
        assert!(e.counter_stats().reencryptions > 0);
        let addrs: Vec<u64> = (0..4u64).map(|b| b * 64).collect();
        let run = e.read_blocks(&addrs);
        assert!(run.failed.is_none());
        assert_eq!(run.counter_fetches, 1);
        for (b, blk) in run.blocks.iter().enumerate() {
            assert_eq!(blk, &[199u8.wrapping_add(b as u8); 64]);
        }
    }

    #[test]
    fn read_blocks_tamper_attribution_matches_sequential() {
        // An unrecoverable corruption mid-run must fail at the same index
        // with the same error and stats as sequential reads, releasing
        // exactly the clean prefix.
        for bit_target in ["data", "sideband"] {
            let mk = || {
                let mut e = MemoryEncryptionEngine::new(EngineConfig {
                    max_correctable_flips: 0,
                    ..EngineConfig::default()
                });
                for b in 0..6u64 {
                    e.write_block(b * 64, &[b as u8 + 1; 64]);
                }
                match bit_target {
                    "data" => e.tamper_data_bit(3 * 64, 100),
                    _ => {
                        // Two side-band flips defeat the MAC's SEC-DED.
                        e.tamper_sideband_bit(3 * 64, 5);
                        e.tamper_sideband_bit(3 * 64, 40);
                    }
                }
                e
            };
            let addrs: Vec<u64> = (0..6u64).map(|b| b * 64).collect();
            let mut fused = mk();
            let run = fused.read_blocks(&addrs);
            let (idx, err) = run.failed.expect("tamper must be detected");
            assert_eq!(idx, 3, "{bit_target}");
            assert_eq!(run.blocks.len(), 3);

            let mut seq = mk();
            let mut seq_err = None;
            let mut seq_prefix = 0;
            for &addr in &addrs {
                match seq.read_block(addr) {
                    Ok(_) => seq_prefix += 1,
                    Err(e) => {
                        seq_err = Some(e);
                        break;
                    }
                }
            }
            assert_eq!(seq_prefix, 3, "{bit_target}");
            assert_eq!(format!("{err:?}"), format!("{:?}", seq_err.unwrap()));
            assert_eq!(fused.stats().reads, seq.stats().reads);
            assert_eq!(fused.stats().failed_reads, seq.stats().failed_reads);
        }
    }

    #[test]
    fn read_blocks_single_flip_corrected_via_fallback() {
        // A single-bit fault inside a fused run is corrected (and the
        // block scrubbed) exactly as a sequential read would — the batch
        // drops to the per-block path, which owns flip-and-check.
        let mut e = engine(MacPlacement::MacInEcc, CounterSchemeKind::Delta);
        for b in 0..4u64 {
            e.write_block(b * 64, &[0x5a; 64]);
        }
        e.tamper_data_bit(128, 77);
        let run = e.read_blocks(&[0, 64, 128, 192]);
        assert!(run.failed.is_none(), "single flip must be corrected");
        assert_eq!(run.blocks, vec![[0x5a; 64]; 4]);
        assert_eq!(e.stats().data_corrections, 1);
        // The scrub repaired storage: the next fused read is clean again.
        let run = e.read_blocks(&[0, 64, 128, 192]);
        assert!(run.failed.is_none());
        assert_eq!(run.counter_fetches, 1, "post-scrub run takes the fast path");
    }

    #[test]
    fn rmw_matches_read_then_write() {
        // read_modify_write_block must be bit-identical to read_block +
        // write_block — same counters, same readback, same stats — while
        // charging only one metadata fetch.
        for mut e in all_configs() {
            let mut scalar = engine(e.config().mac_placement, e.config().counter_scheme);
            for round in 0..10u8 {
                let addr = u64::from(round % 3) * 64;
                let old = e
                    .read_modify_write_block(addr, |b| {
                        for x in b.iter_mut() {
                            *x = x.wrapping_add(round);
                        }
                    })
                    .unwrap();
                let s_old = scalar.read_block(addr).unwrap();
                let mut s_new = s_old;
                for x in s_new.iter_mut() {
                    *x = x.wrapping_add(round);
                }
                scalar.write_block(addr, &s_new);
                assert_eq!(old, s_old, "{:?}", e.config());
                assert_eq!(e.counter_of(addr), scalar.counter_of(addr));
            }
            for b in 0..3u64 {
                assert_eq!(
                    e.read_block(b * 64).unwrap(),
                    scalar.read_block(b * 64).unwrap(),
                    "{:?}",
                    e.config()
                );
            }
            assert_eq!(e.stats().writes, scalar.stats().writes);
        }
    }

    #[test]
    fn rmw_survives_counter_overflow() {
        // Hammering one block with RMWs far past the wrap point exercises
        // the Reencrypted arm, where the seal counter must be re-derived
        // instead of reusing read counter + 1.
        let mut e = engine(MacPlacement::MacInEcc, CounterSchemeKind::Delta);
        for round in 0..600u64 {
            e.read_modify_write_block(0, |b| b[0] = round as u8)
                .unwrap();
        }
        assert!(e.counter_stats().reencryptions > 0);
        let blk = e.read_block(0).unwrap();
        assert_eq!(blk[0], 87, "600 rounds end at round 599 => b[0] = 87");
    }

    #[test]
    fn prefetch_on_off_is_functionally_identical() {
        // The prefetching fast path only reschedules counter fetches; the
        // released plaintext, stats, and fetch counts must be identical.
        for prefetch in [false, true] {
            let mut e = MemoryEncryptionEngine::new(EngineConfig {
                prefetch_counters: prefetch,
                ..EngineConfig::default()
            });
            let addrs: Vec<u64> = (0..96u64).map(|i| (i % 80) * 64).collect();
            for (i, &addr) in addrs.iter().enumerate() {
                e.write_block(addr, &[(i as u8).wrapping_mul(11); 64]);
            }
            let run = e.read_blocks(&addrs);
            assert!(run.failed.is_none(), "prefetch={prefetch}");
            // 80 distinct blocks span two 64-block metadata groups.
            assert_eq!(run.counter_fetches, 2, "prefetch={prefetch}");
            let again = e.read_blocks(&addrs);
            assert_eq!(run.blocks, again.blocks);
        }
    }

    #[test]
    fn freeze_thaw_roundtrip_preserves_everything() {
        for mut e in all_configs() {
            for b in 0..20u64 {
                e.write_block(b * 64, &[b as u8 + 1; 64]);
            }
            for _ in 0..140 {
                e.write_block(0, &[0xCC; 64]); // through overflows
            }
            let mut img = Vec::new();
            e.freeze_into(&mut img);
            let mut back = MemoryEncryptionEngine::thaw_from(&mut ByteReader::new(&img))
                .unwrap_or_else(|err| panic!("{:?}: {err}", e.config()));
            assert_eq!(back.config(), e.config());
            assert_eq!(back.counter_stats(), e.counter_stats());
            let verified = back.verify_all().unwrap();
            assert_eq!(verified, 20, "{:?}", e.config());
            assert_eq!(back.read_block(0).unwrap(), [0xCC; 64]);
            for b in 1..20u64 {
                assert_eq!(back.read_block(b * 64).unwrap(), [b as u8 + 1; 64]);
            }
        }
    }

    #[test]
    fn thaw_rejects_flipped_bit_anywhere() {
        let mut e = engine(MacPlacement::MacInEcc, CounterSchemeKind::Delta);
        for b in 0..4u64 {
            e.write_block(b * 64, &[b as u8; 64]);
        }
        let mut img = Vec::new();
        e.freeze_into(&mut img);
        for pos in [9, img.len() / 3, img.len() / 2, img.len() - 2] {
            let mut bad = img.clone();
            bad[pos] ^= 0x10;
            assert!(
                MemoryEncryptionEngine::thaw_from(&mut ByteReader::new(&bad)).is_err(),
                "flip at byte {pos} must be detected"
            );
        }
    }

    #[test]
    fn export_apply_sealed_replays_a_write() {
        for placement in [MacPlacement::MacInEcc, MacPlacement::SeparateMac] {
            // "Crash" an engine after a write by freezing *before* it,
            // then replay the exported sealed state onto the thawed image.
            let mut e = engine(placement, CounterSchemeKind::Delta);
            e.write_block(0, &[1; 64]);
            e.write_block(64, &[2; 64]);
            let mut img = Vec::new();
            e.freeze_into(&mut img);
            e.write_block(64, &[9; 64]); // the logged post-image
            let sealed = e.export_sealed(64);
            let mut enc = Vec::new();
            sealed.encode(&mut enc);
            let decoded = SealedBlockState::decode(&mut ByteReader::new(&enc)).unwrap();
            assert_eq!(decoded, sealed, "sealed state round-trips");

            let mut back = MemoryEncryptionEngine::thaw_from(&mut ByteReader::new(&img)).unwrap();
            back.apply_sealed(64, &decoded).unwrap();
            back.verify_all().unwrap();
            assert_eq!(back.read_block(64).unwrap(), [9; 64], "{placement:?}");
            assert_eq!(back.read_block(0).unwrap(), [1; 64]);
            assert_eq!(back.counter_of(64), e.counter_of(64));
        }
    }

    #[test]
    fn apply_sealed_forged_record_fails_verification() {
        // A log record with a flipped ciphertext bit installs fine (the
        // engine can't know yet) but the MAC catches it on verify.
        let mut e = MemoryEncryptionEngine::new(EngineConfig {
            max_correctable_flips: 0,
            ..EngineConfig::default()
        });
        e.write_block(0, &[7; 64]);
        let sealed = e.export_sealed(0);
        let mut enc = Vec::new();
        sealed.encode(&mut enc);
        enc[30] ^= 0x80; // inside the ciphertext
        let forged = SealedBlockState::decode(&mut ByteReader::new(&enc)).unwrap();
        let mut fresh = MemoryEncryptionEngine::new(EngineConfig {
            max_correctable_flips: 0,
            ..EngineConfig::default()
        });
        fresh.apply_sealed(0, &forged).unwrap();
        assert!(fresh.verify_all().is_err(), "forged bits must not verify");
    }

    #[test]
    fn rmw_refuses_tampered_block() {
        // A failed verified read must leave storage untouched — RMW can
        // never launder attacker bits into a fresh seal.
        let mut e = MemoryEncryptionEngine::new(EngineConfig {
            max_correctable_flips: 0,
            ..EngineConfig::default()
        });
        e.write_block(0, &[7; 64]);
        let counter_before = e.counter_of(0);
        e.tamper_data_bit(0, 13);
        let ct_before = e.snapshot_block(0).stored.data;
        assert!(e.read_modify_write_block(0, |b| b[0] = 9).is_err());
        assert_eq!(e.counter_of(0), counter_before, "no counter bump");
        assert_eq!(e.snapshot_block(0).stored.data, ct_before, "no write");
    }
}
