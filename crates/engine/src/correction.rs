//! Brute-force *flip-and-check* error correction (Section 3.4 of the
//! paper) and the fault-evaluation harness behind Figure 3.
//!
//! "The most straightforward way to achieve MAC-based error correction
//! without compromising security is performing a brute-force
//! flip-and-check on each of the bits. When an integrity check fails, we
//! attempt to correct the bit error(s) by flipping each bit in the memory
//! block one by one and re-checking the MAC value." Correcting single-bit
//! errors costs at most 512 checks; double-bit errors at most
//! C(512,2) = 130,816 checks.
//!
//! The software implementation exploits the GF(2^64)-linearity of the
//! Carter-Wegman hash ([`ame_crypto::mac::MacProbe`]): after one
//! precomputation pass, each hypothesis is an XOR and a compare — the
//! analogue of the paper's single-cycle hardware GF multiplier argument.

use crate::{CounterSchemeKind, EngineConfig, MacPlacement, MemoryEncryptionEngine, ReadError};
use ame_crypto::MemoryCipher;
use ame_ecc::fault::{FaultOutcome, FaultPattern};

/// Number of data bits in one block.
pub const DATA_BITS: u32 = 512;

/// Maximum MAC checks for single-bit correction.
pub const MAX_CHECKS_SINGLE: u64 = 512;

/// Maximum MAC checks for double-bit correction (512 choose 2).
pub const MAX_CHECKS_DOUBLE: u64 = 130_816;

/// Result of a flip-and-check attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorrectionOutcome {
    /// The repaired ciphertext block, if a candidate matched the MAC.
    pub corrected: Option<[u8; 64]>,
    /// Which global data bits were flipped to repair the block.
    pub flipped_bits: Vec<u32>,
    /// How many MAC hypotheses were evaluated.
    pub checks: u64,
}

/// Attempts to repair `ct` so that its 56-bit MAC equals `tag`, flipping
/// at most `max_flips` bits (0 disables correction, 1 = single, 2 =
/// single-then-double as in the paper).
#[must_use]
pub fn flip_and_check(
    cipher: &MemoryCipher,
    addr: u64,
    counter: u64,
    ct: &[u8; 64],
    tag: u64,
    max_flips: u32,
) -> CorrectionOutcome {
    let mut checks = 0u64;
    if max_flips == 0 {
        return CorrectionOutcome {
            corrected: None,
            flipped_bits: vec![],
            checks,
        };
    }
    let probe = cipher.mac_probe(addr, counter, ct);
    if probe.base_tag() == tag {
        // Nothing to fix (callers normally check first).
        return CorrectionOutcome {
            corrected: Some(*ct),
            flipped_bits: vec![],
            checks,
        };
    }

    let apply = |bits: &[u32]| {
        let mut fixed = *ct;
        for &b in bits {
            fixed[(b / 8) as usize] ^= 1 << (b % 8);
        }
        fixed
    };

    // Single-bit pass.
    for bit in 0..DATA_BITS {
        checks += 1;
        if probe.tag_with_flip(bit) == tag {
            return CorrectionOutcome {
                corrected: Some(apply(&[bit])),
                flipped_bits: vec![bit],
                checks,
            };
        }
    }
    if max_flips < 2 {
        return CorrectionOutcome {
            corrected: None,
            flipped_bits: vec![],
            checks,
        };
    }

    // Double-bit pass.
    for a in 0..DATA_BITS {
        for b in (a + 1)..DATA_BITS {
            checks += 1;
            if probe.tag_with_flips(a, b) == tag {
                return CorrectionOutcome {
                    corrected: Some(apply(&[a, b])),
                    flipped_bits: vec![a, b],
                    checks,
                };
            }
        }
    }
    CorrectionOutcome {
        corrected: None,
        flipped_bits: vec![],
        checks,
    }
}

/// Which protection scheme a Figure 3 fault is evaluated against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// Standard per-word SEC-DED ECC (with MACs stored separately).
    StandardEcc,
    /// The paper's MAC-in-ECC with flip-and-check correction up to the
    /// given flip budget.
    MacEcc {
        /// Maximum flips the corrector attempts (the paper argues 2).
        max_flips: u32,
    },
}

/// Injects `pattern` into a freshly written block under `scheme` and
/// classifies what the protection machinery does about it — one cell of
/// Figure 3.
#[must_use]
pub fn evaluate_fault(scheme: Scheme, pattern: &FaultPattern) -> FaultOutcome {
    let (placement, max_flips) = match scheme {
        Scheme::StandardEcc => (MacPlacement::SeparateMac, 0),
        Scheme::MacEcc { max_flips } => (MacPlacement::MacInEcc, max_flips),
    };
    let mut engine = MemoryEncryptionEngine::new(EngineConfig {
        mac_placement: placement,
        counter_scheme: CounterSchemeKind::Delta,
        max_correctable_flips: max_flips,
        ..EngineConfig::default()
    });

    let addr = 0x40;
    let mut original = [0u8; 64];
    for (i, b) in original.iter_mut().enumerate() {
        *b = (i as u8).wrapping_mul(41).wrapping_add(3);
    }
    engine.write_block(addr, &original);

    for bit in pattern.data_flips() {
        engine.tamper_data_bit(addr, bit);
    }
    for bit in pattern.sideband_flips() {
        engine.tamper_sideband_bit(addr, bit);
    }

    let had_fault = pattern.weight() > 0;
    match engine.read_block(addr) {
        Ok(data) if data == original => {
            if !had_fault {
                FaultOutcome::NoError
            } else {
                FaultOutcome::Corrected
            }
        }
        Ok(_) => FaultOutcome::Miscorrected,
        Err(
            ReadError::MacUncorrectable
            | ReadError::EccUncorrectable
            | ReadError::IntegrityViolation,
        ) => FaultOutcome::DetectedUncorrectable,
        Err(ReadError::Tree(_)) => FaultOutcome::DetectedUncorrectable,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (MemoryCipher, u64, u64, [u8; 64], u64) {
        let cipher = MemoryCipher::from_seed(11);
        let (addr, ctr) = (0x1000u64, 5u64);
        let plain = [0x77u8; 64];
        let ct = cipher.encrypt_block(addr, ctr, &plain);
        let tag = cipher.mac_block(addr, ctr, &ct);
        (cipher, addr, ctr, ct, tag)
    }

    #[test]
    fn repairs_every_single_bit() {
        let (cipher, addr, ctr, ct, tag) = setup();
        for bit in (0..512u32).step_by(17) {
            let mut bad = ct;
            bad[(bit / 8) as usize] ^= 1 << (bit % 8);
            let out = flip_and_check(&cipher, addr, ctr, &bad, tag, 1);
            assert_eq!(out.corrected, Some(ct), "bit {bit}");
            assert_eq!(out.flipped_bits, vec![bit]);
            assert!(out.checks <= MAX_CHECKS_SINGLE);
        }
    }

    #[test]
    fn repairs_double_bits_anywhere() {
        let (cipher, addr, ctr, ct, tag) = setup();
        for (a, b) in [(0u32, 1u32), (8, 9), (100, 400), (510, 511)] {
            let mut bad = ct;
            bad[(a / 8) as usize] ^= 1 << (a % 8);
            bad[(b / 8) as usize] ^= 1 << (b % 8);
            let out = flip_and_check(&cipher, addr, ctr, &bad, tag, 2);
            assert_eq!(out.corrected, Some(ct), "bits {a},{b}");
            let mut bits = out.flipped_bits.clone();
            bits.sort_unstable();
            assert_eq!(bits, vec![a, b]);
            assert!(out.checks <= MAX_CHECKS_SINGLE + MAX_CHECKS_DOUBLE);
        }
    }

    #[test]
    fn budget_one_cannot_fix_doubles() {
        let (cipher, addr, ctr, ct, tag) = setup();
        let mut bad = ct;
        bad[0] ^= 0b11;
        let out = flip_and_check(&cipher, addr, ctr, &bad, tag, 1);
        assert_eq!(out.corrected, None);
        assert_eq!(out.checks, MAX_CHECKS_SINGLE);
    }

    #[test]
    fn budget_zero_is_noop() {
        let (cipher, addr, ctr, ct, tag) = setup();
        let out = flip_and_check(&cipher, addr, ctr, &ct, tag, 0);
        assert_eq!(out.checks, 0);
        assert_eq!(out.corrected, None);
    }

    #[test]
    fn clean_block_short_circuits() {
        let (cipher, addr, ctr, ct, tag) = setup();
        let out = flip_and_check(&cipher, addr, ctr, &ct, tag, 2);
        assert_eq!(out.corrected, Some(ct));
        assert!(out.flipped_bits.is_empty());
    }

    #[test]
    fn triple_flip_is_detected_not_miscorrected() {
        // With 56-bit tags the chance of a wrong candidate matching is
        // ~2^-56; a triple flip must come back uncorrectable.
        let (cipher, addr, ctr, ct, tag) = setup();
        let mut bad = ct;
        bad[0] ^= 0b111;
        let out = flip_and_check(&cipher, addr, ctr, &bad, tag, 2);
        assert_eq!(out.corrected, None);
        assert_eq!(out.checks, MAX_CHECKS_SINGLE + MAX_CHECKS_DOUBLE);
    }

    #[test]
    fn figure3_matrix_spot_checks() {
        use FaultOutcome::*;
        // Row 1: single data bit — both schemes correct it.
        let single = FaultPattern::SingleBit { bit: 77 };
        assert_eq!(evaluate_fault(Scheme::StandardEcc, &single), Corrected);
        assert_eq!(
            evaluate_fault(Scheme::MacEcc { max_flips: 2 }, &single),
            Corrected
        );

        // Row 2: double bits in one word — SEC-DED detects only; MAC-ECC
        // corrects.
        let dw = FaultPattern::DoubleBitSameWord {
            word: 1,
            bits: (3, 60),
        };
        assert_eq!(
            evaluate_fault(Scheme::StandardEcc, &dw),
            DetectedUncorrectable
        );
        assert_eq!(
            evaluate_fault(Scheme::MacEcc { max_flips: 2 }, &dw),
            Corrected
        );

        // Row 3: many scattered singles — SEC-DED corrects all; MAC-ECC
        // detects but cannot correct within budget.
        let scattered = FaultPattern::ScatteredSingles {
            words: 4,
            bit_in_word: 9,
        };
        assert_eq!(evaluate_fault(Scheme::StandardEcc, &scattered), Corrected);
        assert_eq!(
            evaluate_fault(Scheme::MacEcc { max_flips: 2 }, &scattered),
            DetectedUncorrectable
        );
    }
}
