//! Secure page swapping (Section 4.4).
//!
//! The paper notes that the re-encryption hardware it needs already
//! exists in industrial engines: "Intel SGX has logic for swapping out
//! secure pages to an operating system accessible region. This process
//! involves a re-encryption operation akin to the one we need to perform
//! on overflows." This module implements that logic on top of the
//! functional engine, closing the loop:
//!
//! * **swap out**: a 4 KB page is read *verified* from protected memory,
//!   re-encrypted under a dedicated paging key with a fresh **version
//!   nonce**, MAC'd per block, and handed to the (untrusted) OS;
//! * **swap in**: the OS hands a page back; its MACs are checked against
//!   the expected version recorded in on-chip state, so a malicious OS
//!   can neither tamper with swapped pages nor replay a stale version of
//!   a page that was swapped out twice.

use crate::{MemoryEncryptionEngine, ReadError, BLOCK_BYTES};
use ame_crypto::MemoryCipher;
use std::collections::HashMap;

/// Blocks per swapped page (4 KB).
pub const PAGE_BLOCKS: usize = 64;

/// Why a swap-in was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwapError {
    /// Reading the page out of protected memory failed verification.
    Engine(ReadError),
    /// The page's version does not match the on-chip record: either a
    /// replayed stale swap-out, or a page that was never swapped out.
    StaleVersion,
    /// A block's MAC check failed: the OS modified the swapped page.
    Tampered {
        /// Index of the first tampered block within the page.
        block: usize,
    },
}

impl std::fmt::Display for SwapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SwapError::Engine(e) => write!(f, "swap-out verification failed: {e}"),
            SwapError::StaleVersion => write!(f, "swapped page version is stale or unknown"),
            SwapError::Tampered { block } => write!(f, "swapped page tampered at block {block}"),
        }
    }
}

impl std::error::Error for SwapError {}

impl From<ReadError> for SwapError {
    fn from(e: ReadError) -> Self {
        SwapError::Engine(e)
    }
}

/// A page as the OS stores it: ciphertext + per-block MACs + the version
/// token. Everything here is attacker-visible and attacker-mutable.
#[derive(Debug, Clone)]
pub struct SwappedPage {
    page_addr: u64,
    version: u64,
    blocks: Vec<[u8; BLOCK_BYTES]>,
    macs: Vec<u64>,
}

impl SwappedPage {
    /// Page-aligned base address this page belongs to.
    #[must_use]
    pub fn page_addr(&self) -> u64 {
        self.page_addr
    }

    /// The version nonce this page was sealed under.
    #[must_use]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Attacker surface: mutate one stored ciphertext bit.
    pub fn tamper_data_bit(&mut self, block: usize, bit: u32) {
        self.blocks[block][(bit / 8) as usize] ^= 1 << (bit % 8);
    }
}

/// The trusted paging controller: holds the paging key and the on-chip
/// version table (the only state the OS cannot touch).
#[derive(Debug)]
pub struct PagingController {
    swap_cipher: MemoryCipher,
    next_version: u64,
    /// On-chip: the live version of each currently swapped-out page.
    live: HashMap<u64, u64>,
}

impl PagingController {
    /// Creates a controller with a paging key derived from `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            swap_cipher: MemoryCipher::from_seed(seed ^ 0x5a5a_5a5a),
            next_version: 1,
            live: HashMap::new(),
        }
    }

    /// Number of pages currently swapped out.
    #[must_use]
    pub fn swapped_out_pages(&self) -> usize {
        self.live.len()
    }

    /// Swaps the 4 KB page at `page_addr` out of protected memory: every
    /// block is read verified, re-encrypted under the paging key with a
    /// fresh version nonce, and MAC'd. The version is recorded on-chip.
    ///
    /// # Errors
    ///
    /// Propagates any verification failure from the protected read — a
    /// corrupted page must not be laundered into a validly-MAC'd swap.
    ///
    /// # Panics
    ///
    /// Panics if `page_addr` is not 4 KB aligned.
    pub fn swap_out(
        &mut self,
        engine: &mut MemoryEncryptionEngine,
        page_addr: u64,
    ) -> Result<SwappedPage, SwapError> {
        assert_eq!(page_addr % 4096, 0, "page address must be 4 KB aligned");
        let version = self.next_version;
        self.next_version += 1;

        // Nonce: (address, version) — the same shape as the engine's
        // (address, counter), in the paging key's domain. All 64 block
        // keystreams are generated as one pipelined batch.
        let mut blocks = Vec::with_capacity(PAGE_BLOCKS);
        let mut nonces = Vec::with_capacity(PAGE_BLOCKS);
        for i in 0..PAGE_BLOCKS as u64 {
            let addr = page_addr + i * BLOCK_BYTES as u64;
            blocks.push(engine.read_block(addr)?);
            nonces.push((addr, version));
        }
        let mut macs = Vec::with_capacity(PAGE_BLOCKS);
        let keystreams = self.swap_cipher.keystream_batch(&nonces);
        for ((ct, ks), &(addr, _)) in blocks.iter_mut().zip(&keystreams).zip(&nonces) {
            for (c, k) in ct.iter_mut().zip(ks.iter()) {
                *c ^= k;
            }
            macs.push(self.swap_cipher.mac_block(addr, version, ct));
        }
        self.live.insert(page_addr, version);
        Ok(SwappedPage {
            page_addr,
            version,
            blocks,
            macs,
        })
    }

    /// Swaps a page back into protected memory after verifying every
    /// block against the on-chip version record. On success the version
    /// record is consumed: the same swapped image cannot be replayed.
    ///
    /// # Errors
    ///
    /// [`SwapError::StaleVersion`] if the page's version is not the live
    /// one; [`SwapError::Tampered`] if any block fails its MAC.
    pub fn swap_in(
        &mut self,
        engine: &mut MemoryEncryptionEngine,
        page: &SwappedPage,
    ) -> Result<(), SwapError> {
        match self.live.get(&page.page_addr) {
            Some(&v) if v == page.version => {}
            _ => return Err(SwapError::StaleVersion),
        }
        // Verify everything before touching protected memory, then
        // decrypt the whole page with one batched keystream pass.
        let nonces: Vec<(u64, u64)> = (0..PAGE_BLOCKS as u64)
            .map(|i| (page.page_addr + i * BLOCK_BYTES as u64, page.version))
            .collect();
        for (i, &(addr, _)) in nonces.iter().enumerate() {
            if !self
                .swap_cipher
                .verify_block(addr, page.version, &page.blocks[i], page.macs[i])
            {
                return Err(SwapError::Tampered { block: i });
            }
        }
        let keystreams = self.swap_cipher.keystream_batch(&nonces);
        for ((ct, ks), &(addr, _)) in page.blocks.iter().zip(&keystreams).zip(&nonces) {
            let mut plain = *ct;
            for (p, k) in plain.iter_mut().zip(ks.iter()) {
                *p ^= k;
            }
            engine.write_block(addr, &plain);
        }
        self.live.remove(&page.page_addr);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EngineConfig;

    fn setup() -> (MemoryEncryptionEngine, PagingController) {
        let mut engine = MemoryEncryptionEngine::new(EngineConfig::default());
        for i in 0..PAGE_BLOCKS as u64 {
            engine.write_block(0x1000 + i * 64, &[i as u8 + 1; 64]);
        }
        (engine, PagingController::new(9))
    }

    #[test]
    fn swap_roundtrip_preserves_contents() {
        let (mut engine, mut pager) = setup();
        let page = pager.swap_out(&mut engine, 0x1000).unwrap();
        assert_eq!(pager.swapped_out_pages(), 1);
        // The victim scribbles over the (now free) protected frame.
        for i in 0..PAGE_BLOCKS as u64 {
            engine.write_block(0x1000 + i * 64, &[0xff; 64]);
        }
        pager.swap_in(&mut engine, &page).unwrap();
        assert_eq!(pager.swapped_out_pages(), 0);
        for i in 0..PAGE_BLOCKS as u64 {
            assert_eq!(
                engine.read_block(0x1000 + i * 64).unwrap(),
                [i as u8 + 1; 64]
            );
        }
    }

    #[test]
    fn swapped_image_is_ciphertext() {
        let (mut engine, mut pager) = setup();
        let page = pager.swap_out(&mut engine, 0x1000).unwrap();
        assert_ne!(
            page.blocks[0], [1u8; 64],
            "OS must only ever see ciphertext"
        );
    }

    #[test]
    fn os_tampering_detected() {
        let (mut engine, mut pager) = setup();
        let mut page = pager.swap_out(&mut engine, 0x1000).unwrap();
        page.tamper_data_bit(7, 123);
        assert_eq!(
            pager.swap_in(&mut engine, &page),
            Err(SwapError::Tampered { block: 7 })
        );
    }

    #[test]
    fn replaying_stale_swap_rejected() {
        let (mut engine, mut pager) = setup();
        // Swap out, back in, modify, swap out again: v1 is now stale.
        let v1 = pager.swap_out(&mut engine, 0x1000).unwrap();
        pager.swap_in(&mut engine, &v1).unwrap();
        engine.write_block(0x1000, &[0xaa; 64]);
        let _v2 = pager.swap_out(&mut engine, 0x1000).unwrap();
        assert_eq!(
            pager.swap_in(&mut engine, &v1),
            Err(SwapError::StaleVersion)
        );
    }

    #[test]
    fn double_swap_in_rejected() {
        let (mut engine, mut pager) = setup();
        let page = pager.swap_out(&mut engine, 0x1000).unwrap();
        pager.swap_in(&mut engine, &page).unwrap();
        assert_eq!(
            pager.swap_in(&mut engine, &page),
            Err(SwapError::StaleVersion),
            "version record is consumed on swap-in"
        );
    }

    #[test]
    fn cross_page_splice_rejected() {
        // A page swapped out at one address cannot be swapped in as
        // another page (addresses are in the MAC nonce, and the version
        // table is keyed by page address).
        let (mut engine, mut pager) = setup();
        for i in 0..PAGE_BLOCKS as u64 {
            engine.write_block(0x2000 + i * 64, &[0x77; 64]);
        }
        let a = pager.swap_out(&mut engine, 0x1000).unwrap();
        let _b = pager.swap_out(&mut engine, 0x2000).unwrap();
        // Forge: present page A's image with page B's address.
        let forged = SwappedPage {
            page_addr: 0x2000,
            ..a
        };
        let r = pager.swap_in(&mut engine, &forged);
        assert!(
            matches!(
                r,
                Err(SwapError::StaleVersion) | Err(SwapError::Tampered { .. })
            ),
            "{r:?}"
        );
    }

    #[test]
    fn corrupted_memory_cannot_be_swapped_out() {
        let (mut engine, mut pager) = setup();
        let mut e2 = MemoryEncryptionEngine::new(EngineConfig {
            max_correctable_flips: 0,
            ..EngineConfig::default()
        });
        for i in 0..PAGE_BLOCKS as u64 {
            e2.write_block(0x1000 + i * 64, &[1; 64]);
        }
        e2.tamper_data_bit(0x1000 + 5 * 64, 9);
        assert!(matches!(
            pager.swap_out(&mut e2, 0x1000),
            Err(SwapError::Engine(_))
        ));
        // And the original engine still works.
        assert!(pager.swap_out(&mut engine, 0x1000).is_ok());
    }

    #[test]
    #[should_panic(expected = "4 KB aligned")]
    fn unaligned_page_panics() {
        let (mut engine, mut pager) = setup();
        let _ = pager.swap_out(&mut engine, 0x1040);
    }
}
