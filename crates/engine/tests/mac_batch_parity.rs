//! Fault-injection parity between the batched and scalar verify paths.
//!
//! The fused read path ([`MemoryEncryptionEngine::read_blocks`]) checks a
//! run's tags with one multi-message `mac_batch` call and promises to be
//! *behaviourally identical* to a loop of sequential
//! [`MemoryEncryptionEngine::read_block`] calls: same released plaintext
//! prefix, same error attribution, same flip-and-check corrections, same
//! scrubbing, same statistics. This suite proves that promise under
//! fault injection: for **every single-bit position of a fused run** —
//! all 512 data bits and all 64 side-band bits of each block — two
//! identically-seeded engines take the identical flip, one verifies the
//! run batched and the other scalar, and every observable (plaintext,
//! failure cause and index, correction/quarantine statistics, and the
//! post-read sealed state) must match bit-for-bit.

use ame_engine::{
    CounterSchemeKind, EngineConfig, MacPlacement, MemoryEncryptionEngine, ReadError,
};

const BLOCK: usize = 64;
/// Blocks in the fused run under test.
const RUN: usize = 4;
/// Base address of the run.
const BASE: u64 = 0x1000;

fn engine(placement: MacPlacement) -> MemoryEncryptionEngine {
    MemoryEncryptionEngine::new(EngineConfig {
        mac_placement: placement,
        counter_scheme: CounterSchemeKind::Delta,
        ..EngineConfig::default()
    })
}

/// Seeds two identical engines with the same fused-run write.
fn seeded_pair(placement: MacPlacement) -> (MemoryEncryptionEngine, MemoryEncryptionEngine) {
    let items: Vec<(u64, [u8; BLOCK])> = (0..RUN as u64)
        .map(|i| {
            let mut pat = [0u8; BLOCK];
            for (j, b) in pat.iter_mut().enumerate() {
                *b = (i as u8).wrapping_mul(31) ^ j as u8;
            }
            (BASE + i * BLOCK as u64, pat)
        })
        .collect();
    let mut batched = engine(placement);
    let mut scalar = engine(placement);
    batched.write_blocks(&items);
    scalar.write_blocks(&items);
    (batched, scalar)
}

fn run_addrs() -> Vec<u64> {
    (0..RUN as u64).map(|i| BASE + i * BLOCK as u64).collect()
}

/// Reads the run through sequential scalar verification with the same
/// prefix-release contract as [`MemoryEncryptionEngine::read_blocks`].
fn read_run_scalar(
    e: &mut MemoryEncryptionEngine,
    addrs: &[u64],
) -> (Vec<[u8; BLOCK]>, Option<(usize, ReadError)>) {
    let mut blocks = Vec::with_capacity(addrs.len());
    for (i, &addr) in addrs.iter().enumerate() {
        match e.read_block(addr) {
            Ok(plain) => blocks.push(plain),
            Err(err) => return (blocks, Some((i, err))),
        }
    }
    (blocks, None)
}

/// Injects the same flip into both engines, verifies the run batched in
/// one and scalar in the other, and asserts every observable matches.
fn assert_parity(
    batched: &mut MemoryEncryptionEngine,
    scalar: &mut MemoryEncryptionEngine,
    flip: impl Fn(&mut MemoryEncryptionEngine),
    what: &str,
) {
    flip(batched);
    flip(scalar);
    let addrs = run_addrs();
    let run = batched.read_blocks(&addrs);
    let (want_blocks, want_failed) = read_run_scalar(scalar, &addrs);
    assert_eq!(run.blocks, want_blocks, "{what}: released prefix");
    assert_eq!(run.failed, want_failed, "{what}: attribution");
    // Identical statistics: reads, corrections (flip-and-check and MAC
    // parity), hypothesis counts, and quarantines must agree exactly.
    assert_eq!(batched.stats(), scalar.stats(), "{what}: stats");
    // Identical post-read sealed state: scrubbing (or the absence of
    // it) must leave both engines holding the same bits.
    for &addr in &addrs {
        assert_eq!(
            batched.snapshot_block(addr),
            scalar.snapshot_block(addr),
            "{what}: sealed state @{addr:#x}"
        );
    }
}

#[test]
fn every_data_bit_flip_is_parity_identical_mac_in_ecc() {
    let (mut batched, mut scalar) = seeded_pair(MacPlacement::MacInEcc);
    for block in 0..RUN as u64 {
        let addr = BASE + block * BLOCK as u64;
        for bit in 0..(BLOCK as u32 * 8) {
            assert_parity(
                &mut batched,
                &mut scalar,
                |e| e.tamper_data_bit(addr, bit),
                &format!("MacInEcc data block {block} bit {bit}"),
            );
        }
    }
    // Every single data flip is corrected by flip-and-check on both
    // paths; nothing may be quarantined.
    assert_eq!(batched.stats().failed_reads, 0);
    assert!(batched.stats().data_corrections > 0);
}

#[test]
fn every_sideband_bit_flip_is_parity_identical_mac_in_ecc() {
    let (mut batched, mut scalar) = seeded_pair(MacPlacement::MacInEcc);
    for block in 0..RUN as u64 {
        let addr = BASE + block * BLOCK as u64;
        for bit in 0..64 {
            assert_parity(
                &mut batched,
                &mut scalar,
                |e| e.tamper_sideband_bit(addr, bit),
                &format!("MacInEcc sideband block {block} bit {bit}"),
            );
        }
    }
    assert_eq!(batched.stats().failed_reads, 0);
    assert!(batched.stats().mac_corrections > 0);
}

#[test]
fn every_data_bit_flip_is_parity_identical_separate_mac() {
    let (mut batched, mut scalar) = seeded_pair(MacPlacement::SeparateMac);
    for block in 0..RUN as u64 {
        let addr = BASE + block * BLOCK as u64;
        for bit in 0..(BLOCK as u32 * 8) {
            assert_parity(
                &mut batched,
                &mut scalar,
                |e| e.tamper_data_bit(addr, bit),
                &format!("SeparateMac data block {block} bit {bit}"),
            );
        }
    }
    assert_eq!(batched.stats().failed_reads, 0);
    assert!(batched.stats().data_corrections > 0);
}

#[test]
fn every_sideband_bit_flip_is_parity_identical_separate_mac() {
    let (mut batched, mut scalar) = seeded_pair(MacPlacement::SeparateMac);
    for block in 0..RUN as u64 {
        let addr = BASE + block * BLOCK as u64;
        for bit in 0..64 {
            assert_parity(
                &mut batched,
                &mut scalar,
                |e| e.tamper_sideband_bit(addr, bit),
                &format!("SeparateMac sideband block {block} bit {bit}"),
            );
        }
    }
    assert_eq!(batched.stats().failed_reads, 0);
}

#[test]
fn uncorrectable_double_flip_quarantines_identically() {
    // Two flips in one SEC-DED word are uncorrectable under
    // SeparateMac: both paths must attribute the failure to the same
    // run index with the same cause and release the same prefix.
    for victim in 0..RUN as u64 {
        let (mut batched, mut scalar) = seeded_pair(MacPlacement::SeparateMac);
        let addr = BASE + victim * BLOCK as u64;
        assert_parity(
            &mut batched,
            &mut scalar,
            |e| {
                e.tamper_data_bit(addr, 8);
                e.tamper_data_bit(addr, 9);
            },
            &format!("SeparateMac double flip block {victim}"),
        );
        assert_eq!(batched.stats().failed_reads, 1);
        let run = batched.read_blocks(&run_addrs());
        assert_eq!(
            run.failed.map(|(i, _)| i),
            Some(victim as usize),
            "stays quarantined at the victim"
        );
    }
}
