//! A small, self-contained, deterministic pseudo-random number generator.
//!
//! The repository builds in fully offline environments, so it cannot pull
//! the `rand` crate from a registry. Every randomized component — the
//! synthetic trace generators, the Monte-Carlo reliability study, the
//! stress and property tests — uses this crate instead. The API mirrors
//! the subset of `rand` the workspace used (`seed_from_u64`, `gen_range`,
//! `gen_bool`, `fill`), so call sites read identically.
//!
//! The generator is xoshiro256** (Blackman & Vigna), seeded through
//! SplitMix64 — the textbook pairing, statistically far stronger than the
//! xorshift helpers used for cheap hardware-policy modelling elsewhere in
//! the workspace, and more than adequate for workload synthesis.
//!
//! Determinism is part of the contract: the same seed must produce the
//! same stream on every platform and in every future PR, because golden
//! experiment outputs and calibrated test thresholds depend on it.
//!
//! # Example
//!
//! ```
//! use ame_prng::StdRng;
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let die = rng.gen_range(1..=6u32);
//! assert!((1..=6).contains(&die));
//! let mut a = StdRng::seed_from_u64(7);
//! let mut b = StdRng::seed_from_u64(7);
//! assert_eq!(a.gen_range(0..1000u64), b.gen_range(0..1000u64));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// SplitMix64 step: used to expand one seed word into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256** generator.
///
/// The name mirrors `rand::rngs::StdRng` so existing call sites only
/// change their import line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// Creates a generator whose stream is fully determined by `seed`.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { s }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)` (53 mantissa bits of the raw output).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform value from an (exclusive or inclusive) range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: UniformRange<T>,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `p` is in `[0, 1]`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.next_f64() < p
    }

    /// Fills a byte slice with uniform random bytes.
    pub fn fill(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }

    /// Uniform `u64` below `bound` via Lemire-style widening multiply with
    /// rejection (unbiased).
    fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        // Rejection zone keeps the multiply-shift unbiased.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let m = u128::from(x) * u128::from(bound);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }
}

/// Range types [`StdRng::gen_range`] accepts.
pub trait UniformRange<T> {
    /// Draws one uniform sample from the range.
    fn sample(&self, rng: &mut StdRng) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl UniformRange<$t> for Range<$t> {
            fn sample(&self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl UniformRange<$t> for RangeInclusive<$t> {
            fn sample(&self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl UniformRange<$t> for Range<$t> {
            fn sample(&self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (i128::from(self.end) - i128::from(self.start)) as u64;
                (i128::from(self.start) + i128::from(rng.below(span))) as $t
            }
        }
        impl UniformRange<$t> for RangeInclusive<$t> {
            fn sample(&self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (i128::from(hi) - i128::from(lo)) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (i128::from(lo) + i128::from(rng.below(span + 1))) as $t
            }
        }
    )*};
}

impl_signed_range!(i8, i16, i32, i64);

impl UniformRange<f64> for Range<f64> {
    fn sample(&self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl UniformRange<f64> for RangeInclusive<f64> {
    fn sample(&self, rng: &mut StdRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + rng.next_f64() * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(10..20u64);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(5..=7u32);
            assert!((5..=7).contains(&w));
            let f = rng.gen_range(0.0..2.5f64);
            assert!((0.0..2.5).contains(&f));
            let g = rng.gen_range(-1.0..=1.0f64);
            assert!((-1.0..=1.0).contains(&g));
            let s = rng.gen_range(-8..8i32);
            assert!((-8..8).contains(&s));
            let t = rng.gen_range(-3..=-1i64);
            assert!((-3..=-1).contains(&t));
        }
    }

    #[test]
    fn single_value_inclusive_range() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10 {
            assert_eq!(rng.gen_range(9..=9u64), 9);
        }
    }

    #[test]
    fn all_range_values_reachable() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(6);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn fill_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut buf = [0u8; 13];
        rng.fill(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
        let mut rng2 = StdRng::seed_from_u64(7);
        let mut buf2 = [0u8; 13];
        rng2.fill(&mut buf2);
        assert_eq!(buf, buf2);
    }

    #[test]
    fn uniformity_rough_check() {
        // Mean of 0..100 draws should land near 49.5.
        let mut rng = StdRng::seed_from_u64(8);
        let n = 100_000;
        let sum: u64 = (0..n).map(|_| rng.gen_range(0..100u64)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 49.5).abs() < 0.5, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(9);
        let _ = rng.gen_range(5..5u64);
    }
}
